package stats

import (
	"math"
	"math/rand"
	"testing"
)

// pareto draws n Pareto(alpha, xm) samples.
func pareto(rng *rand.Rand, n int, alpha, xm float64) []float64 {
	xs := make([]float64, n)
	for i := range xs {
		u := rng.Float64()
		if u < 1e-15 {
			u = 1e-15
		}
		xs[i] = xm * math.Pow(u, -1/alpha)
	}
	return xs
}

// lognormal draws n lognormal(mu, sigma) samples.
func lognormal(rng *rand.Rand, n int, mu, sigma float64) []float64 {
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = math.Exp(mu + sigma*rng.NormFloat64())
	}
	return xs
}

func TestAggregate(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5, 6, 7}
	got := Aggregate(xs, 2)
	want := []float64{3, 7, 11} // trailing 7 dropped
	if len(got) != len(want) {
		t.Fatalf("len = %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("agg[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestAggregateIdentity(t *testing.T) {
	xs := []float64{1, 2, 3}
	got := Aggregate(xs, 1)
	if &got[0] == &xs[0] {
		t.Error("Aggregate(m=1) must copy, not alias")
	}
	for i := range xs {
		if got[i] != xs[i] {
			t.Errorf("agg[%d] = %v, want %v", i, got[i], xs[i])
		}
	}
}

func TestAggregatePanicsOnBadM(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for m=0")
		}
	}()
	Aggregate([]float64{1}, 0)
}

func TestAggregateMassConservation(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	xs := make([]float64, 1000)
	for i := range xs {
		xs[i] = rng.Float64()
	}
	for _, m := range []int{2, 4, 8, 10} {
		agg := Aggregate(xs, m)
		var sumAgg, sumXs float64
		for _, v := range agg {
			sumAgg += v
		}
		n := (len(xs) / m) * m
		for _, v := range xs[:n] {
			sumXs += v
		}
		if !almostEqual(sumAgg, sumXs, 1e-9) {
			t.Errorf("m=%d: aggregate sum %v != covered sum %v", m, sumAgg, sumXs)
		}
	}
}

// TestAestPurePareto: on a pure Pareto sample, aest must find a tail and
// estimate alpha within a reasonable band.
func TestAestPurePareto(t *testing.T) {
	for _, alpha := range []float64{1.2, 1.5, 1.9} {
		rng := rand.New(rand.NewSource(6))
		xs := pareto(rng, 20000, alpha, 1)
		res := Aest(xs, AestConfig{})
		if !res.TailFound {
			t.Fatalf("alpha=%v: no tail found on pure Pareto", alpha)
		}
		if math.Abs(res.Alpha-alpha) > 0.5 {
			t.Errorf("alpha=%v: estimated %v, off by more than 0.5", alpha, res.Alpha)
		}
		if res.TailFraction <= 0 || res.TailFraction > 1 {
			t.Errorf("alpha=%v: tail fraction %v out of (0,1]", alpha, res.TailFraction)
		}
	}
}

// TestAestParetoOnLognormalBody: the classifier's actual regime — a
// lognormal body with a Pareto tail grafted on. The detected onset must
// fall between the body bulk and the tail start.
func TestAestBodyPlusTail(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	body := lognormal(rng, 9000, 0, 1)
	tailStart := math.Exp(2.5) // ≈ 12.18, well above the body median 1
	tail := pareto(rng, 1000, 1.4, tailStart)
	xs := append(body, tail...)
	res := Aest(xs, AestConfig{})
	if !res.TailFound {
		t.Fatal("no tail found on body+tail mixture")
	}
	if res.TailOnset <= Quantile(xs, 0.25) {
		t.Errorf("onset %v is inside the body bulk", res.TailOnset)
	}
	if res.TailOnset > tailStart*10 {
		t.Errorf("onset %v is way beyond the tail start %v", res.TailOnset, tailStart)
	}
}

// TestAestLightTail: on light-tailed data (exponential/normal) the
// estimator must usually decline to find a power-law tail. Occasional
// false positives on a single draw are tolerated by testing several
// seeds and requiring a majority of rejections.
func TestAestLightTailMostlyRejected(t *testing.T) {
	rejected := 0
	const trials = 7
	for seed := int64(0); seed < trials; seed++ {
		rng := rand.New(rand.NewSource(100 + seed))
		xs := make([]float64, 8000)
		for i := range xs {
			xs[i] = rng.ExpFloat64() + 0.01
		}
		if res := Aest(xs, AestConfig{}); !res.TailFound {
			rejected++
		}
	}
	if rejected < trials/2+1 {
		t.Errorf("light-tailed data accepted too often: %d/%d rejected", rejected, trials)
	}
}

func TestAestTinySample(t *testing.T) {
	res := Aest([]float64{1, 2, 3}, AestConfig{})
	if res.TailFound {
		t.Error("3-point sample cannot support a tail claim")
	}
}

func TestAestAllEqual(t *testing.T) {
	xs := make([]float64, 1000)
	for i := range xs {
		xs[i] = 5
	}
	if res := Aest(xs, AestConfig{}); res.TailFound {
		t.Error("constant sample has no tail")
	}
}

func TestAestIgnoresJunkValues(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	xs := pareto(rng, 10000, 1.5, 1)
	xs = append(xs, math.NaN(), math.Inf(1), -5, 0)
	res := Aest(xs, AestConfig{})
	if !res.TailFound {
		t.Error("junk values broke tail detection")
	}
}

func TestAestDoesNotMutateVisibly(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	xs := pareto(rng, 5000, 1.5, 1)
	cp := make([]float64, len(xs))
	copy(cp, xs)
	Aest(xs, AestConfig{})
	for i := range xs {
		if xs[i] != cp[i] {
			t.Fatal("Aest mutated its input")
		}
	}
}

func TestAestDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	xs := pareto(rng, 8000, 1.3, 1)
	a := Aest(xs, AestConfig{})
	b := Aest(xs, AestConfig{})
	if a.TailFound != b.TailFound || a.TailOnset != b.TailOnset || a.Alpha != b.Alpha {
		t.Errorf("Aest not deterministic: %+v vs %+v", a, b)
	}
}

// TestAestScaleInvariance: multiplying the sample by a constant must
// scale the onset by (roughly) the same constant and keep alpha stable.
// The candidate grid is quantile-based, so this holds exactly.
func TestAestScaleInvariance(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	xs := pareto(rng, 10000, 1.5, 1)
	const k = 1e6
	scaled := make([]float64, len(xs))
	for i := range xs {
		scaled[i] = xs[i] * k
	}
	a := Aest(xs, AestConfig{})
	b := Aest(scaled, AestConfig{})
	if !a.TailFound || !b.TailFound {
		t.Fatalf("tails: %v, %v", a.TailFound, b.TailFound)
	}
	if !almostEqual(b.TailOnset, a.TailOnset*k, 1e-6) {
		t.Errorf("onset did not scale: %v vs %v*%v", b.TailOnset, a.TailOnset, k)
	}
	if math.Abs(a.Alpha-b.Alpha) > 1e-6 {
		t.Errorf("alpha changed under scaling: %v vs %v", a.Alpha, b.Alpha)
	}
}

func TestHillOnPareto(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	for _, alpha := range []float64{1.1, 1.5, 2.0} {
		xs := pareto(rng, 20000, alpha, 1)
		k := len(xs) / 10
		got, err := Hill(xs, k)
		if err != nil {
			t.Fatalf("alpha=%v: %v", alpha, err)
		}
		if math.Abs(got-alpha) > 0.25 {
			t.Errorf("alpha=%v: Hill = %v", alpha, got)
		}
	}
}

func TestHillErrors(t *testing.T) {
	if _, err := Hill([]float64{1, 2, 3}, 1); err == nil {
		t.Error("k=1: expected error")
	}
	if _, err := Hill([]float64{1, 2, 3}, 3); err == nil {
		t.Error("k=n: expected error")
	}
	if _, err := Hill([]float64{-1, -2, -3, -4}, 2); err == nil {
		t.Error("negative order statistics: expected error")
	}
	if _, err := Hill([]float64{5, 5, 5, 5, 5}, 2); err == nil {
		t.Error("degenerate top-k: expected error")
	}
}

// TestHillAgreesWithAest: the two estimators must broadly agree on a
// pure Pareto sample — the cross-check the paper's reference [1]
// recommends.
func TestHillAgreesWithAest(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	xs := pareto(rng, 20000, 1.4, 1)
	res := Aest(xs, AestConfig{})
	if !res.TailFound {
		t.Fatal("no tail")
	}
	hill, err := Hill(xs, len(xs)/10)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Alpha-hill) > 0.5 {
		t.Errorf("aest %v vs hill %v disagree by > 0.5", res.Alpha, hill)
	}
}
