package stats

import (
	"fmt"
	"math"
	"sort"
)

// CCDF is an empirical complementary cumulative distribution function:
// for each support point X[i], P[x > X[i]] = P[i]. Points are strictly
// increasing in X and strictly decreasing in P (ties collapsed).
type CCDF struct {
	X []float64
	P []float64
}

// NewCCDF builds the empirical CCDF of xs. Non-positive and NaN values
// are dropped (the estimators operate in log-log space). The input is not
// modified.
func NewCCDF(xs []float64) CCDF {
	clean := make([]float64, 0, len(xs))
	for _, x := range xs {
		if x > 0 && !math.IsNaN(x) && !math.IsInf(x, 0) {
			clean = append(clean, x)
		}
	}
	sort.Float64s(clean)
	return ccdfFromSorted(clean)
}

// NewCCDFSorted builds the empirical CCDF of a sample already sorted
// ascending and free of NaN/±Inf (non-positive values may only appear
// as a leading run, which is skipped) — the zero-copy twin of NewCCDF
// for callers that hold a sorted view, with identical output. The
// input is not modified.
func NewCCDFSorted(sorted []float64) CCDF {
	lo := 0
	for lo < len(sorted) && sorted[lo] <= 0 {
		lo++
	}
	return ccdfFromSorted(sorted[lo:])
}

// ccdfFromSorted collapses an ascending-sorted positive sample into
// CCDF support points.
func ccdfFromSorted(clean []float64) CCDF {
	return ccdfAppendSorted(clean, nil, nil)
}

// ccdfAppendSorted is ccdfFromSorted appending support points into the
// caller's x/p storage (the aest scratch arena) instead of growing
// fresh slices; output values are identical.
func ccdfAppendSorted(clean, x, p []float64) CCDF {
	n := len(clean)
	for i := 0; i < n; {
		j := i
		for j < n && clean[j] == clean[i] {
			j++
		}
		// P[x > clean[i]] = (n - j) / n, computed at the last tie.
		pv := float64(n-j) / float64(n)
		if pv > 0 { // the maximum has CCDF 0; it carries no log-log info
			x = append(x, clean[i])
			p = append(p, pv)
		}
		i = j
	}
	return CCDF{X: x, P: p}
}

// Len reports the number of support points.
func (c CCDF) Len() int { return len(c.X) }

// At evaluates P[x > v] by step interpolation.
func (c CCDF) At(v float64) float64 {
	if len(c.X) == 0 {
		return 0
	}
	// First index with X > v; CCDF at v equals P of the last X <= v.
	i := sort.SearchFloat64s(c.X, v)
	if i < len(c.X) && c.X[i] == v {
		return c.P[i]
	}
	if i == 0 {
		return 1
	}
	return c.P[i-1]
}

// InverseAt returns the smallest support point x with P[X > x] <= p,
// i.e. the (1-p)-quantile read off the CCDF. ok is false for an empty
// distribution or when no point is that rare.
func (c CCDF) InverseAt(p float64) (float64, bool) {
	for i := range c.X {
		if c.P[i] <= p {
			return c.X[i], true
		}
	}
	return 0, false
}

// TailFrom returns the sub-CCDF restricted to support points >= x0.
func (c CCDF) TailFrom(x0 float64) CCDF {
	i := sort.SearchFloat64s(c.X, x0)
	return CCDF{X: c.X[i:], P: c.P[i:]}
}

// LogLog returns the support in (log10 x, log10 p) coordinates.
func (c CCDF) LogLog() (lx, lp []float64) {
	lx = make([]float64, len(c.X))
	lp = make([]float64, len(c.P))
	for i := range c.X {
		lx[i] = math.Log10(c.X[i])
		lp[i] = math.Log10(c.P[i])
	}
	return lx, lp
}

// LinearFit is an ordinary-least-squares line y = Slope*x + Intercept.
type LinearFit struct {
	Slope, Intercept float64
	R2               float64 // coefficient of determination
	N                int
}

// FitLine computes the OLS fit of y on x. It returns an error when fewer
// than two distinct x values are supplied.
func FitLine(x, y []float64) (LinearFit, error) {
	if len(x) != len(y) {
		return LinearFit{}, fmt.Errorf("stats: FitLine: mismatched lengths %d, %d", len(x), len(y))
	}
	n := len(x)
	if n < 2 {
		return LinearFit{}, fmt.Errorf("stats: FitLine: need >= 2 points, got %d", n)
	}
	var sx, sy float64
	for i := range x {
		sx += x[i]
		sy += y[i]
	}
	mx, my := sx/float64(n), sy/float64(n)
	var sxx, sxy, syy float64
	for i := range x {
		dx, dy := x[i]-mx, y[i]-my
		sxx += dx * dx
		sxy += dx * dy
		syy += dy * dy
	}
	if sxx == 0 {
		return LinearFit{}, fmt.Errorf("stats: FitLine: x values are constant")
	}
	f := LinearFit{N: n}
	f.Slope = sxy / sxx
	f.Intercept = my - f.Slope*mx
	if syy == 0 {
		f.R2 = 1
	} else {
		f.R2 = sxy * sxy / (sxx * syy)
	}
	return f, nil
}

// Histogram is a fixed-width-bin histogram over [Min, Max).
type Histogram struct {
	Min, Max float64
	Counts   []int
	// Underflow and Overflow count out-of-range observations.
	Underflow, Overflow int
}

// NewHistogram creates a histogram with bins equal-width bins.
func NewHistogram(min, max float64, bins int) *Histogram {
	if bins <= 0 || !(max > min) {
		panic(fmt.Sprintf("stats: NewHistogram: invalid range [%v,%v) with %d bins", min, max, bins))
	}
	return &Histogram{Min: min, Max: max, Counts: make([]int, bins)}
}

// Add records one observation.
func (h *Histogram) Add(x float64) {
	switch {
	case x < h.Min:
		h.Underflow++
	case x >= h.Max:
		h.Overflow++
	default:
		width := (h.Max - h.Min) / float64(len(h.Counts))
		i := int((x - h.Min) / width)
		if i >= len(h.Counts) { // guard float edge at Max
			i = len(h.Counts) - 1
		}
		h.Counts[i]++
	}
}

// Total returns the in-range observation count.
func (h *Histogram) Total() int {
	t := 0
	for _, c := range h.Counts {
		t += c
	}
	return t
}

// BinCenter returns the midpoint of bin i.
func (h *Histogram) BinCenter(i int) float64 {
	width := (h.Max - h.Min) / float64(len(h.Counts))
	return h.Min + (float64(i)+0.5)*width
}
