package stats

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool {
	if a == b {
		return true
	}
	return math.Abs(a-b) <= tol*math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
}

func TestSummarizeEmpty(t *testing.T) {
	s := Summarize(nil)
	if s.N != 0 || s.Sum != 0 || s.Mean != 0 || s.Variance != 0 {
		t.Fatalf("Summarize(nil) = %+v, want zero value", s)
	}
}

func TestSummarizeSingle(t *testing.T) {
	s := Summarize([]float64{42})
	if s.N != 1 || s.Mean != 42 || s.Min != 42 || s.Max != 42 {
		t.Fatalf("Summarize([42]) = %+v", s)
	}
	if s.Variance != 0 || s.StdDev != 0 {
		t.Fatalf("single-sample variance = %v, want 0", s.Variance)
	}
}

func TestSummarizeKnown(t *testing.T) {
	// Sample with textbook values: mean 5, variance 10 (n-1 denominator).
	xs := []float64{1, 3, 5, 7, 9}
	s := Summarize(xs)
	if s.N != 5 || s.Sum != 25 {
		t.Fatalf("N=%d Sum=%v", s.N, s.Sum)
	}
	if !almostEqual(s.Mean, 5, 1e-12) {
		t.Errorf("Mean = %v, want 5", s.Mean)
	}
	if !almostEqual(s.Variance, 10, 1e-12) {
		t.Errorf("Variance = %v, want 10", s.Variance)
	}
	if s.Min != 1 || s.Max != 9 {
		t.Errorf("Min=%v Max=%v", s.Min, s.Max)
	}
}

func TestSummarizeNegativeValues(t *testing.T) {
	s := Summarize([]float64{-5, -1, -3})
	if !almostEqual(s.Mean, -3, 1e-12) {
		t.Errorf("Mean = %v, want -3", s.Mean)
	}
	if s.Min != -5 || s.Max != -1 {
		t.Errorf("Min=%v Max=%v", s.Min, s.Max)
	}
}

// TestSummarizeWelfordStability checks the one-pass variance against the
// naive two-pass computation on a sample with a huge offset, where the
// naive sum-of-squares formula loses precision.
func TestSummarizeWelfordStability(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	xs := make([]float64, 1000)
	const offset = 1e9
	for i := range xs {
		xs[i] = offset + rng.Float64()
	}
	s := Summarize(xs)
	// Two-pass reference.
	var mean float64
	for _, x := range xs {
		mean += x
	}
	mean /= float64(len(xs))
	var m2 float64
	for _, x := range xs {
		m2 += (x - mean) * (x - mean)
	}
	ref := m2 / float64(len(xs)-1)
	if !almostEqual(s.Variance, ref, 1e-9) {
		t.Errorf("Variance = %v, two-pass reference = %v", s.Variance, ref)
	}
	if s.Variance < 0 {
		t.Errorf("variance must be non-negative, got %v", s.Variance)
	}
}

func TestSummarizeProperties(t *testing.T) {
	prop := func(raw []float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) && math.Abs(x) < 1e100 {
				xs = append(xs, x)
			}
		}
		if len(xs) == 0 {
			return true
		}
		s := Summarize(xs)
		if s.Min > s.Max || s.Mean < s.Min || s.Mean > s.Max {
			return false
		}
		return s.Variance >= 0
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestQuantileBasics(t *testing.T) {
	xs := []float64{3, 1, 4, 1, 5, 9, 2, 6}
	if got := Quantile(xs, 0); got != 1 {
		t.Errorf("q0 = %v, want 1", got)
	}
	if got := Quantile(xs, 1); got != 9 {
		t.Errorf("q1 = %v, want 9", got)
	}
	// Median of 8 sorted values interpolates between the 4th and 5th.
	sorted := []float64{1, 1, 2, 3, 4, 5, 6, 9}
	want := (sorted[3] + sorted[4]) / 2
	if got := Quantile(xs, 0.5); !almostEqual(got, want, 1e-12) {
		t.Errorf("median = %v, want %v", got, want)
	}
}

func TestQuantileDoesNotMutate(t *testing.T) {
	xs := []float64{5, 3, 1}
	Quantile(xs, 0.5)
	if xs[0] != 5 || xs[1] != 3 || xs[2] != 1 {
		t.Errorf("Quantile mutated its input: %v", xs)
	}
}

func TestQuantilePanics(t *testing.T) {
	for _, tc := range []struct {
		name string
		xs   []float64
		q    float64
	}{
		{"empty", nil, 0.5},
		{"q<0", []float64{1}, -0.1},
		{"q>1", []float64{1}, 1.1},
	} {
		t.Run(tc.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Errorf("expected panic")
				}
			}()
			Quantile(tc.xs, tc.q)
		})
	}
}

func TestQuantileMonotone(t *testing.T) {
	prop := func(raw []float64, a, b float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) {
				xs = append(xs, x)
			}
		}
		if len(xs) == 0 {
			return true
		}
		qa := math.Abs(math.Mod(a, 1))
		qb := math.Abs(math.Mod(b, 1))
		if qa > qb {
			qa, qb = qb, qa
		}
		return Quantile(xs, qa) <= Quantile(xs, qb)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestQuantileSortedAgreesWithQuantile(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	xs := make([]float64, 257)
	for i := range xs {
		xs[i] = rng.NormFloat64()
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	for _, q := range []float64{0, 0.01, 0.25, 0.5, 0.75, 0.95, 1} {
		if a, b := Quantile(xs, q), QuantileSorted(sorted, q); a != b {
			t.Errorf("q=%v: Quantile=%v QuantileSorted=%v", q, a, b)
		}
	}
}

func TestEWMAPaperConvention(t *testing.T) {
	// θ̂(t+1) = α·θ̂(t) + (1−α)·θ(t) with α = 0.5.
	e := NewEWMA(0.5)
	if e.Initialized() {
		t.Fatal("fresh EWMA reports initialized")
	}
	if got := e.Update(10); got != 10 {
		t.Fatalf("first update = %v, want 10 (bootstrap)", got)
	}
	if got := e.Update(20); got != 15 {
		t.Fatalf("second update = %v, want 15", got)
	}
	if got := e.Update(15); got != 15 {
		t.Fatalf("third update = %v, want 15", got)
	}
	if !e.Initialized() || e.Value() != 15 {
		t.Fatalf("state: init=%v value=%v", e.Initialized(), e.Value())
	}
}

func TestEWMAAlphaExtremes(t *testing.T) {
	// α = 0: no memory, tracks the observation exactly.
	e := NewEWMA(0)
	e.Update(5)
	e.Update(100)
	if e.Value() != 100 {
		t.Errorf("alpha=0: value = %v, want 100", e.Value())
	}
	// α = 1: frozen at the first observation.
	f := NewEWMA(1)
	f.Update(5)
	f.Update(100)
	if f.Value() != 5 {
		t.Errorf("alpha=1: value = %v, want 5", f.Value())
	}
}

func TestEWMAReset(t *testing.T) {
	e := NewEWMA(0.5)
	e.Update(10)
	e.Reset()
	if e.Initialized() || e.Value() != 0 {
		t.Fatalf("after Reset: init=%v value=%v", e.Initialized(), e.Value())
	}
	if got := e.Update(7); got != 7 {
		t.Fatalf("update after reset = %v, want 7 (re-bootstrap)", got)
	}
}

func TestEWMAInvalidAlphaPanics(t *testing.T) {
	for _, a := range []float64{-0.1, 1.1, math.NaN()} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewEWMA(%v): expected panic", a)
				}
			}()
			NewEWMA(a)
		}()
	}
}

// TestEWMAConvergence: feeding a constant must converge to it from any
// starting point, for any alpha < 1.
func TestEWMAConvergence(t *testing.T) {
	e := NewEWMA(0.9)
	e.Update(1000)
	for i := 0; i < 400; i++ {
		e.Update(3)
	}
	if !almostEqual(e.Value(), 3, 1e-9) {
		t.Errorf("EWMA did not converge: %v", e.Value())
	}
}

// TestEWMABoundedByInputs: the smoothed value always stays within the
// min/max of the observations (convexity).
func TestEWMABoundedByInputs(t *testing.T) {
	prop := func(alphaRaw float64, raw []float64) bool {
		alpha := math.Abs(math.Mod(alphaRaw, 1))
		xs := make([]float64, 0, len(raw))
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) {
				xs = append(xs, x)
			}
		}
		if len(xs) == 0 {
			return true
		}
		e := NewEWMA(alpha)
		lo, hi := math.Inf(1), math.Inf(-1)
		for _, x := range xs {
			e.Update(x)
			if x < lo {
				lo = x
			}
			if x > hi {
				hi = x
			}
			if e.Value() < lo-1e-9 || e.Value() > hi+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
