package stats

import (
	"math"
	"math/rand"
	"reflect"
	"sort"
	"testing"
)

// mixedSample draws a lognormal body with a Pareto tail — the workload
// shape the aest detector sees per interval.
func mixedSample(n int, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	xs := make([]float64, n)
	for i := range xs {
		if rng.Float64() < 0.04 {
			xs[i] = 20 * math.Pow(rng.Float64(), -1/1.9) * 1e4
		} else {
			xs[i] = math.Exp(rng.NormFloat64()*1.2) * 1e4
		}
	}
	return xs
}

// TestAestScratchMatchesPackage pins the arena path against the
// package-level entry points: identical AestResults on every seed, and
// a single scratch reused across calls must not perturb later results.
func TestAestScratchMatchesPackage(t *testing.T) {
	var scratch AestScratch
	cfg := AestConfig{WantLevels: true}
	for seed := int64(0); seed < 12; seed++ {
		xs := mixedSample(2000+int(seed)*500, seed)
		want := Aest(xs, cfg)
		got := scratch.Aest(xs, cfg)
		if !reflect.DeepEqual(want, got) {
			t.Fatalf("seed %d: scratch Aest diverged\nwant %+v\ngot  %+v", seed, want, got)
		}
		sorted := append([]float64(nil), xs...)
		sort.Float64s(sorted)
		got = scratch.AestSorted(xs, sorted, cfg)
		if !reflect.DeepEqual(want, got) {
			t.Fatalf("seed %d: scratch AestSorted diverged\nwant %+v\ngot  %+v", seed, want, got)
		}
	}
}

// TestAestWantLevels verifies diagnostics are opt-in: default-off
// returns nil Levels with every other field unchanged, and the
// opted-in slice does not alias scratch storage.
func TestAestWantLevels(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	xs := make([]float64, 4000)
	for i := range xs {
		xs[i] = math.Pow(rng.Float64(), -1/1.4) // pure Pareto, alpha 1.4
	}
	withL := Aest(xs, AestConfig{WantLevels: true})
	if !withL.TailFound {
		t.Fatal("expected a detected tail on the Pareto sample")
	}
	if len(withL.Levels) == 0 {
		t.Fatal("WantLevels: true returned no level diagnostics")
	}
	noL := Aest(xs, AestConfig{})
	if noL.Levels != nil {
		t.Fatalf("default config returned Levels %v, want nil", noL.Levels)
	}
	noL.Levels = withL.Levels
	if !reflect.DeepEqual(withL, noL) {
		t.Fatalf("WantLevels changed non-diagnostic fields:\nwith %+v\nwithout %+v", withL, noL)
	}

	var scratch AestScratch
	first := scratch.Aest(xs, AestConfig{WantLevels: true})
	if !first.TailFound {
		t.Fatal("scratch path lost the tail the package path found")
	}
	firstLevels := append([]AestLevel(nil), first.Levels...)
	scratch.Aest(mixedSample(4000, 4), AestConfig{WantLevels: true}) // reuse arena
	if !reflect.DeepEqual(first.Levels, firstLevels) {
		t.Fatal("Levels aliases scratch storage: mutated by a later call")
	}
}

func TestAggregateInto(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5, 6, 7}
	for m := 1; m <= 4; m++ {
		want := Aggregate(xs, m)
		got := AggregateInto(nil, xs, m)
		if !reflect.DeepEqual(want, got) {
			t.Fatalf("m=%d: AggregateInto %v != Aggregate %v", m, got, want)
		}
		// Appends after existing elements, reusing capacity.
		dst := make([]float64, 1, 16)
		dst[0] = -1
		got = AggregateInto(dst, xs, m)
		if got[0] != -1 || !reflect.DeepEqual(got[1:], want) {
			t.Fatalf("m=%d: AggregateInto with prefix = %v, want [-1 %v...]", m, got, want)
		}
		if &got[0] != &dst[0] {
			t.Fatalf("m=%d: AggregateInto reallocated despite sufficient capacity", m)
		}
	}
}

func TestAggregateIntoPanicsOnBadM(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("AggregateInto(m=0) did not panic")
		}
	}()
	AggregateInto(nil, []float64{1}, 0)
}

func TestHillSortedMatchesHill(t *testing.T) {
	xs := mixedSample(3000, 7)
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	for _, k := range []int{2, 10, 150, 450, len(xs) - 1} {
		want, wantErr := Hill(xs, k)
		got, gotErr := HillSorted(sorted, k)
		if (wantErr == nil) != (gotErr == nil) {
			t.Fatalf("k=%d: error mismatch: Hill %v, HillSorted %v", k, wantErr, gotErr)
		}
		if want != got {
			t.Fatalf("k=%d: HillSorted %v != Hill %v", k, got, want)
		}
	}
	if _, err := HillSorted(sorted, 1); err == nil {
		t.Fatal("HillSorted(k=1) did not error")
	}
	if _, err := HillSorted(sorted, len(sorted)); err == nil {
		t.Fatal("HillSorted(k=n) did not error")
	}
	if _, err := HillSorted([]float64{-2, -1, 0, 1, 2, 3}, 4); err == nil {
		t.Fatal("HillSorted with non-positive order statistic did not error")
	}
}

// TestSortPositiveMatchesSort pins the radix sort against the stdlib
// comparison sort across sizes straddling the small-input cutoff,
// magnitudes spanning many exponent bytes, and heavy duplication.
func TestSortPositiveMatchesSort(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, n := range []int{1, 2, 100, 127, 128, 129, 1000, 6000} {
		for trial := 0; trial < 4; trial++ {
			xs := make([]float64, n)
			for i := range xs {
				switch trial {
				case 0: // same-magnitude lognormal
					xs[i] = math.Exp(rng.NormFloat64()*1.2) * 1e4
				case 1: // wide dynamic range
					xs[i] = math.Pow(10, rng.Float64()*30-15)
				case 2: // heavy ties
					xs[i] = float64(rng.Intn(8) + 1)
				case 3: // subnormals and extremes
					xs[i] = math.Float64frombits(uint64(rng.Int63()) & 0x7fefffffffffffff)
					if xs[i] == 0 {
						xs[i] = 1
					}
				}
			}
			want := append([]float64(nil), xs...)
			sort.Float64s(want)
			tmp := make([]float64, n)
			SortPositive(xs, tmp)
			if !reflect.DeepEqual(xs, want) {
				t.Fatalf("n=%d trial=%d: SortPositive diverged from sort.Float64s", n, trial)
			}
		}
	}
}

// TestAestScratchSteadyStateAllocs pins the warm arena path: repeated
// calls on same-shaped input must not allocate (diagnostics off).
func TestAestScratchSteadyStateAllocs(t *testing.T) {
	xs := mixedSample(6000, 9)
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	var scratch AestScratch
	scratch.AestSorted(xs, sorted, AestConfig{})
	allocs := testing.AllocsPerRun(5, func() {
		scratch.AestSorted(xs, sorted, AestConfig{})
	})
	if allocs != 0 {
		t.Fatalf("warm scratch AestSorted allocates %v per run, want 0", allocs)
	}
}
