package netflow

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// Stream framing: NetFlow travels over UDP, which preserves datagram
// boundaries; a file does not. StreamWriter/StreamReader store a
// sequence of v5 datagrams with a 4-byte big-endian length prefix each,
// so exports can be captured to disk and replayed into a Collector.

// maxStreamDatagram bounds a framed datagram to the v5 maximum.
const maxStreamDatagram = HeaderLen + MaxRecordsPerDatagram*RecordLen

// StreamWriter appends length-prefixed datagrams to w.
type StreamWriter struct {
	w       io.Writer
	scratch []byte
	count   uint64
}

// NewStreamWriter returns a StreamWriter on w.
func NewStreamWriter(w io.Writer) *StreamWriter { return &StreamWriter{w: w} }

// Write frames and appends one datagram.
func (sw *StreamWriter) Write(d *Datagram) error {
	raw, err := d.Encode(sw.scratch)
	if err != nil {
		return err
	}
	sw.scratch = raw
	var lenBuf [4]byte
	binary.BigEndian.PutUint32(lenBuf[:], uint32(len(raw)))
	if _, err := sw.w.Write(lenBuf[:]); err != nil {
		return fmt.Errorf("netflow: writing frame length: %w", err)
	}
	if _, err := sw.w.Write(raw); err != nil {
		return fmt.Errorf("netflow: writing datagram: %w", err)
	}
	sw.count++
	return nil
}

// Count reports how many datagrams have been written.
func (sw *StreamWriter) Count() uint64 { return sw.count }

// StreamReader reads length-prefixed datagrams from r.
type StreamReader struct {
	r   io.Reader
	buf []byte
}

// NewStreamReader returns a StreamReader on r.
func NewStreamReader(r io.Reader) *StreamReader { return &StreamReader{r: r} }

// Next returns the next datagram. io.EOF marks a clean end of stream;
// a partial frame yields io.ErrUnexpectedEOF.
func (sr *StreamReader) Next() (*Datagram, error) {
	var lenBuf [4]byte
	if _, err := io.ReadFull(sr.r, lenBuf[:]); err != nil {
		if errors.Is(err, io.EOF) {
			return nil, io.EOF
		}
		return nil, fmt.Errorf("netflow: reading frame length: %w", err)
	}
	n := binary.BigEndian.Uint32(lenBuf[:])
	if n < HeaderLen+RecordLen || n > maxStreamDatagram {
		return nil, fmt.Errorf("netflow: framed datagram of %d bytes out of range", n)
	}
	if cap(sr.buf) < int(n) {
		sr.buf = make([]byte, n)
	}
	data := sr.buf[:n]
	if _, err := io.ReadFull(sr.r, data); err != nil {
		if errors.Is(err, io.EOF) {
			err = io.ErrUnexpectedEOF
		}
		return nil, fmt.Errorf("netflow: reading framed datagram: %w", err)
	}
	return Decode(data)
}
