package netflow

import (
	"errors"
	"io"

	"repro/internal/agg"
	"repro/internal/bgp"
)

// RecordSourceStats counts streaming attribution outcomes.
type RecordSourceStats struct {
	Datagrams uint64
	Records   uint64
	Routed    uint64
	Unrouted  uint64
}

// RecordSource adapts a framed NetFlow v5 stream to the unified
// agg.RecordSource API: datagrams are decoded one at a time, each
// record longest-prefix matched against the BGP table and yielded as a
// span record (octets spread over [First, Last] by the consumer's
// shared apportioning arithmetic). Unrouted records are counted and
// skipped, exactly as the batch Collector does, so draining a
// RecordSource into a StreamAccumulator is bit-identical to replaying
// the same datagrams through a Collector.
//
// Flow records are exported out of order up to the cache's active
// timeout: size the accumulator window to cover at least
// timeout/interval + 1 intervals so no bits land behind the closed
// edge.
type RecordSource struct {
	sr    *StreamReader
	table *bgp.Table
	cur   *Datagram
	next  int // index of the next record in cur

	// Stats counts attribution outcomes.
	Stats RecordSourceStats
}

// NewRecordSource returns a RecordSource draining sr against table.
func NewRecordSource(sr *StreamReader, table *bgp.Table) *RecordSource {
	return &RecordSource{sr: sr, table: table}
}

// Next returns the next routed flow record. io.EOF marks a clean end of
// stream.
func (s *RecordSource) Next() (agg.Record, error) {
	for {
		for s.cur != nil && s.next < len(s.cur.Records) {
			h, r := s.cur.Header, s.cur.Records[s.next]
			s.next++
			s.Stats.Records++
			rec, ok := Attribute(s.table, h, r)
			if !ok {
				s.Stats.Unrouted++
				continue
			}
			s.Stats.Routed++
			return rec, nil
		}
		d, err := s.sr.Next()
		if err != nil {
			if errors.Is(err, io.EOF) {
				return agg.Record{}, io.EOF
			}
			return agg.Record{}, err
		}
		s.Stats.Datagrams++
		s.cur, s.next = d, 0
	}
}
