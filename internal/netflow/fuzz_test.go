package netflow

import (
	"testing"
)

// FuzzDecode drives the v5 datagram decoder with arbitrary bytes: no
// panics, and decodable datagrams must re-encode losslessly.
func FuzzDecode(f *testing.F) {
	good, _ := (&Datagram{Header: Header{Count: 1}, Records: []Record{sampleRecord()}}).Encode(nil)
	f.Add(append([]byte(nil), good...))
	f.Add(append([]byte(nil), good[:HeaderLen]...))
	f.Add([]byte{0, 5})

	f.Fuzz(func(t *testing.T, data []byte) {
		d, err := Decode(data)
		if err != nil {
			return
		}
		if int(d.Header.Count) != len(d.Records) {
			t.Fatalf("decoded count %d != %d records", d.Header.Count, len(d.Records))
		}
		raw, err := d.Encode(nil)
		if err != nil {
			t.Fatalf("re-encode of decoded datagram failed: %v", err)
		}
		back, err := Decode(raw)
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if back.Header != d.Header {
			t.Fatalf("header changed across roundtrip")
		}
		for i := range d.Records {
			if back.Records[i] != d.Records[i] {
				t.Fatalf("record %d changed across roundtrip", i)
			}
		}
	})
}
