package netflow

import (
	"net/netip"
	"testing"
	"time"

	"repro/internal/packet"
)

func BenchmarkEncode30(b *testing.B) {
	recs := make([]Record, MaxRecordsPerDatagram)
	for i := range recs {
		recs[i] = sampleRecord()
	}
	d := &Datagram{Header: Header{Count: uint16(len(recs))}, Records: recs}
	var buf []byte
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		buf, err = d.Encode(buf)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(int64(len(buf)))
}

func BenchmarkDecode30(b *testing.B) {
	recs := make([]Record, MaxRecordsPerDatagram)
	for i := range recs {
		recs[i] = sampleRecord()
	}
	d := &Datagram{Header: Header{Count: uint16(len(recs))}, Records: recs}
	raw, err := d.Encode(nil)
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(raw)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Decode(raw); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDecodeReuse is the daemon ingest readers' steady state: one
// Datagram scratch decoded into over and over. Must stay 0 allocs/op —
// the read→decode half of the zero-alloc ingest contract.
func BenchmarkDecodeReuse(b *testing.B) {
	recs := make([]Record, MaxRecordsPerDatagram)
	for i := range recs {
		recs[i] = sampleRecord()
	}
	d := &Datagram{Header: Header{Count: uint16(len(recs))}, Records: recs}
	raw, err := d.Encode(nil)
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(raw)))
	b.ReportAllocs()
	var scratch Datagram
	if err := DecodeInto(raw, &scratch); err != nil { // grow Records once
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := DecodeInto(raw, &scratch); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkExporterAddPacket(b *testing.B) {
	e := NewExporter(ExporterConfig{}, func(*Datagram) error { return nil })
	// 512 concurrent flows cycling.
	sums := make([]packet.Summary, 512)
	for i := range sums {
		sums[i] = packet.Summary{
			SrcIP:      netip.AddrFrom4([4]byte{10, 0, byte(i >> 8), byte(i)}),
			DstIP:      netip.AddrFrom4([4]byte{192, 0, 2, byte(i)}),
			Protocol:   6,
			SrcPort:    uint16(1024 + i),
			DstPort:    80,
			WireLength: 500,
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ts := t0.Add(time.Duration(i) * time.Millisecond)
		if err := e.AddPacket(ts, sums[i%len(sums)]); err != nil {
			b.Fatal(err)
		}
	}
}
