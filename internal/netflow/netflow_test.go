package netflow

import (
	"errors"
	"net/netip"
	"testing"
	"time"

	"repro/internal/packet"
)

var (
	t0  = time.Date(2001, time.July, 24, 9, 0, 0, 0, time.UTC)
	aIP = netip.MustParseAddr("10.1.2.3")
	bIP = netip.MustParseAddr("192.0.2.9")
)

func sampleRecord() Record {
	return Record{
		SrcAddr: aIP, DstAddr: bIP,
		NextHop: netip.MustParseAddr("203.0.113.1"),
		InputIf: 3, OutputIf: 7,
		Packets: 100, Octets: 123456,
		First: 1000, Last: 61000,
		SrcPort: 1234, DstPort: 80,
		TCPFlags: 0x1B, Proto: 6, TOS: 0x20,
		SrcAS: 65001, DstAS: 65002,
		SrcMask: 24, DstMask: 16,
	}
}

func TestEncodeDecodeRoundtrip(t *testing.T) {
	d := &Datagram{
		Header: Header{
			Count: 2, SysUptime: 99000,
			UnixSecs: uint32(t0.Unix()), UnixNsecs: 500,
			FlowSequence: 42, EngineType: 1, EngineID: 2, SamplingInterval: 0x4001,
		},
		Records: []Record{sampleRecord(), sampleRecord()},
	}
	d.Records[1].DstAddr = netip.MustParseAddr("198.51.100.1")

	raw, err := d.Encode(nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(raw) != HeaderLen+2*RecordLen {
		t.Fatalf("encoded %d bytes, want %d", len(raw), HeaderLen+2*RecordLen)
	}
	back, err := Decode(raw)
	if err != nil {
		t.Fatal(err)
	}
	if back.Header != d.Header {
		t.Errorf("header roundtrip: %+v vs %+v", back.Header, d.Header)
	}
	for i := range d.Records {
		if back.Records[i] != d.Records[i] {
			t.Errorf("record %d roundtrip:\n got %+v\nwant %+v", i, back.Records[i], d.Records[i])
		}
	}
}

// TestDecodeIntoReuse pins the scratch-reuse contract: a Datagram that
// just held a large datagram decodes a smaller one without stale
// records, allocating nothing once the records slice has grown.
func TestDecodeIntoReuse(t *testing.T) {
	big := &Datagram{Header: Header{Count: 5}, Records: []Record{
		sampleRecord(), sampleRecord(), sampleRecord(), sampleRecord(), sampleRecord(),
	}}
	small := &Datagram{Header: Header{Count: 1, FlowSequence: 9}, Records: []Record{sampleRecord()}}
	small.Records[0].DstAddr = netip.MustParseAddr("198.51.100.7")
	bigRaw, err := big.Encode(nil)
	if err != nil {
		t.Fatal(err)
	}
	smallRaw, err := small.Encode(nil)
	if err != nil {
		t.Fatal(err)
	}
	var scratch Datagram
	if err := DecodeInto(bigRaw, &scratch); err != nil {
		t.Fatal(err)
	}
	bigCap := cap(scratch.Records)
	if err := DecodeInto(smallRaw, &scratch); err != nil {
		t.Fatal(err)
	}
	if len(scratch.Records) != 1 || scratch.Records[0] != small.Records[0] {
		t.Errorf("reused decode = %d records, first %+v", len(scratch.Records), scratch.Records[0])
	}
	if scratch.Header != small.Header {
		t.Errorf("reused header = %+v, want %+v", scratch.Header, small.Header)
	}
	if cap(scratch.Records) != bigCap {
		t.Errorf("records capacity shrank %d -> %d; reuse lost", bigCap, cap(scratch.Records))
	}
	allocs := testing.AllocsPerRun(100, func() {
		if err := DecodeInto(bigRaw, &scratch); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("steady-state DecodeInto allocates %.1f/op, want 0", allocs)
	}
}

func TestEncodeValidation(t *testing.T) {
	d := &Datagram{Header: Header{Count: 0}}
	if _, err := d.Encode(nil); err == nil {
		t.Error("empty datagram accepted")
	}
	d = &Datagram{Header: Header{Count: 2}, Records: []Record{sampleRecord()}}
	if _, err := d.Encode(nil); err == nil {
		t.Error("count mismatch accepted")
	}
	r := sampleRecord()
	r.DstAddr = netip.MustParseAddr("2001:db8::1")
	d = &Datagram{Header: Header{Count: 1}, Records: []Record{r}}
	if _, err := d.Encode(nil); err == nil {
		t.Error("IPv6 record accepted by v5 encoder")
	}
	many := make([]Record, MaxRecordsPerDatagram+1)
	for i := range many {
		many[i] = sampleRecord()
	}
	d = &Datagram{Header: Header{Count: uint16(len(many))}, Records: many}
	if _, err := d.Encode(nil); err == nil {
		t.Error("31 records accepted")
	}
}

func TestDecodeValidation(t *testing.T) {
	if _, err := Decode([]byte{0, 5}); err == nil {
		t.Error("short datagram accepted")
	}
	good, _ := (&Datagram{Header: Header{Count: 1}, Records: []Record{sampleRecord()}}).Encode(nil)
	bad := append([]byte(nil), good...)
	bad[1] = 9 // version 9
	if _, err := Decode(bad); err == nil {
		t.Error("version 9 accepted")
	}
	if _, err := Decode(good[:HeaderLen+10]); err == nil {
		t.Error("truncated records accepted")
	}
	bad2 := append([]byte(nil), good...)
	bad2[3] = 5 // count 5, but only 1 record present
	if _, err := Decode(bad2); err == nil {
		t.Error("overclaimed count accepted")
	}
}

func TestDecodeCountMismatch(t *testing.T) {
	one, _ := (&Datagram{Header: Header{Count: 1}, Records: []Record{sampleRecord()}}).Encode(nil)
	two, _ := (&Datagram{Header: Header{Count: 2}, Records: []Record{sampleRecord(), sampleRecord()}}).Encode(nil)
	countOne := append([]byte(nil), two...)
	countOne[3] = 1 // payload holds two records, header claims one

	cases := []struct {
		name     string
		data     []byte
		wantErr  bool
		mismatch bool // errors.Is(err, ErrCountMismatch)
	}{
		{"exact single record", one, false, false},
		{"exact two records", two, false, false},
		{"truncated mid-record", one[:HeaderLen+10], true, true},
		{"trailing garbage", append(append([]byte(nil), one...), 0xde, 0xad), true, true},
		{"count claims two, one present", two[:HeaderLen+RecordLen], true, true},
		{"payload holds two, count says one", countOne, true, true},
		{"shorter than header", one[:HeaderLen-4], true, false}, // distinct short-datagram error
	}
	for _, tc := range cases {
		d, err := Decode(tc.data)
		if (err != nil) != tc.wantErr {
			t.Errorf("%s: Decode error = %v, want error %v", tc.name, err, tc.wantErr)
			continue
		}
		if err == nil {
			if int(d.Header.Count) != len(d.Records) {
				t.Errorf("%s: count %d != %d records", tc.name, d.Header.Count, len(d.Records))
			}
			continue
		}
		if got := errors.Is(err, ErrCountMismatch); got != tc.mismatch {
			t.Errorf("%s: errors.Is(err, ErrCountMismatch) = %v, want %v (err: %v)", tc.name, got, tc.mismatch, err)
		}
	}
}

func TestHeaderTimestamps(t *testing.T) {
	h := Header{
		SysUptime: 100000, // exporter has been up 100 s
		UnixSecs:  uint32(t0.Unix()),
		UnixNsecs: 0,
	}
	r := Record{First: 40000, Last: 70000}
	first, last := h.Timestamps(r)
	// boot = t0 - 100 s; first = boot + 40 s = t0 - 60 s.
	if want := t0.Add(-60 * time.Second); !first.Equal(want) {
		t.Errorf("first = %v, want %v", first, want)
	}
	if want := t0.Add(-30 * time.Second); !last.Equal(want) {
		t.Errorf("last = %v, want %v", last, want)
	}
}

func packetAt(dst netip.Addr, bytes int) packet.Summary {
	return packet.Summary{
		SrcIP: aIP, DstIP: dst,
		Protocol: 6, SrcPort: 1000, DstPort: 80,
		WireLength: bytes,
	}
}

func TestExporterAggregatesFlows(t *testing.T) {
	var got []*Datagram
	e := NewExporter(ExporterConfig{}, func(d *Datagram) error {
		got = append(got, d)
		return nil
	})
	// Three packets of one flow within the timeouts.
	for i := 0; i < 3; i++ {
		if err := e.AddPacket(t0.Add(time.Duration(i)*time.Second), packetAt(bIP, 1000)); err != nil {
			t.Fatal(err)
		}
	}
	if e.CachedFlows() != 1 {
		t.Fatalf("cache = %d flows", e.CachedFlows())
	}
	if err := e.Flush(); err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || len(got[0].Records) != 1 {
		t.Fatalf("datagrams = %v", got)
	}
	r := got[0].Records[0]
	if r.Packets != 3 || r.Octets != 3000 {
		t.Errorf("record = %+v", r)
	}
	if r.Last-r.First != 2000 {
		t.Errorf("duration = %d ms, want 2000", r.Last-r.First)
	}
	if e.Sequence() != 1 {
		t.Errorf("sequence = %d", e.Sequence())
	}
}

func TestExporterInactiveTimeout(t *testing.T) {
	var records int
	e := NewExporter(ExporterConfig{InactiveTimeout: 5 * time.Second}, func(d *Datagram) error {
		records += len(d.Records)
		return nil
	})
	e.AddPacket(t0, packetAt(bIP, 100))
	// 10 s later the flow is idle-expired; a packet to another dst
	// triggers the scan.
	e.AddPacket(t0.Add(10*time.Second), packetAt(netip.MustParseAddr("198.51.100.1"), 100))
	if e.CachedFlows() != 1 {
		t.Errorf("cache = %d, want 1 (first flow expired)", e.CachedFlows())
	}
	e.Flush()
	if records != 2 {
		t.Errorf("records = %d, want 2", records)
	}
}

func TestExporterActiveTimeoutSplitsLongFlow(t *testing.T) {
	var records int
	e := NewExporter(ExporterConfig{ActiveTimeout: 30 * time.Second, InactiveTimeout: time.Hour},
		func(d *Datagram) error { records += len(d.Records); return nil })
	// A flow sending every second for 2 minutes must be flushed at
	// least three times by the active timeout.
	for i := 0; i < 120; i++ {
		if err := e.AddPacket(t0.Add(time.Duration(i)*time.Second), packetAt(bIP, 500)); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.Flush(); err != nil {
		t.Fatal(err)
	}
	if records < 3 {
		t.Errorf("long flow exported as %d records, want >= 3", records)
	}
}

func TestExporterSkipsNonIPv4(t *testing.T) {
	e := NewExporter(ExporterConfig{}, nil)
	sum := packet.Summary{
		SrcIP: netip.MustParseAddr("2001:db8::1"),
		DstIP: netip.MustParseAddr("2001:db8::2"),
	}
	if err := e.AddPacket(t0, sum); err != nil {
		t.Fatal(err)
	}
	if e.CachedFlows() != 0 {
		t.Error("IPv6 packet cached by v5 exporter")
	}
}

func TestExporterBatchesDatagrams(t *testing.T) {
	var sizes []int
	e := NewExporter(ExporterConfig{InactiveTimeout: time.Millisecond},
		func(d *Datagram) error { sizes = append(sizes, len(d.Records)); return nil })
	// 65 distinct one-packet flows, each expiring immediately.
	for i := 0; i < 65; i++ {
		dst := netip.AddrFrom4([4]byte{192, 0, 2, byte(i)})
		e.AddPacket(t0.Add(time.Duration(i)*time.Second), packetAt(dst, 100))
	}
	e.Flush()
	total := 0
	for _, s := range sizes {
		if s > MaxRecordsPerDatagram {
			t.Fatalf("datagram with %d records", s)
		}
		total += s
	}
	if total != 65 {
		t.Errorf("exported %d records, want 65", total)
	}
}

func TestExporterDeterministic(t *testing.T) {
	run := func() []uint32 {
		var seqs []uint32
		e := NewExporter(ExporterConfig{InactiveTimeout: 2 * time.Second},
			func(d *Datagram) error { seqs = append(seqs, d.Header.FlowSequence); return nil })
		for i := 0; i < 200; i++ {
			dst := netip.AddrFrom4([4]byte{192, 0, 2, byte(i % 16)})
			e.AddPacket(t0.Add(time.Duration(i)*331*time.Millisecond), packetAt(dst, 100+i))
		}
		e.Flush()
		return seqs
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("nondeterministic datagram count: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("nondeterministic sequence at %d", i)
		}
	}
}
