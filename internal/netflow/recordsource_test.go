package netflow

import (
	"bytes"
	"testing"
	"time"

	"repro/internal/agg"
	"repro/internal/bgp"
	"repro/internal/core"
	"repro/internal/trace"
)

// exportStream runs a synthetic capture through the flow cache and
// returns the framed v5 datagram stream a router would ship to disk.
func exportStream(t *testing.T, table *bgp.Table) ([]byte, time.Time, int) {
	t.Helper()
	link, err := trace.NewLink(trace.LinkConfig{
		Table: table, Flows: 150, MeanLoadBps: 1e6, Seed: 80,
		Profile: trace.FlatProfile(),
	})
	if err != nil {
		t.Fatal(err)
	}
	const intervals = 4
	series := link.GenerateSeries(t0, time.Minute, intervals)
	var capture bytes.Buffer
	if _, err := trace.NewPacketEmitter(81).Emit(&capture, series); err != nil {
		t.Fatal(err)
	}

	var framed bytes.Buffer
	sw := NewStreamWriter(&framed)
	exp := NewExporter(ExporterConfig{ActiveTimeout: 30 * time.Second, InactiveTimeout: 10 * time.Second}, sw.Write)
	src, err := agg.NewPcapPacketSource(bytes.NewReader(capture.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	for {
		ts, sum, err := src.Next()
		if err != nil {
			break
		}
		if err := exp.AddPacket(ts, sum); err != nil {
			t.Fatal(err)
		}
	}
	if err := exp.Flush(); err != nil {
		t.Fatal(err)
	}
	return framed.Bytes(), t0, intervals
}

// TestRecordSourceMatchesCollector: replaying a framed datagram stream
// through the unified RecordSource into a StreamAccumulator must
// produce interval columns bit-identical to the batch Collector filling
// a Series — both paths share the apportioning arithmetic, and this
// test pins that contract on real exporter output.
func TestRecordSourceMatchesCollector(t *testing.T) {
	table, err := bgp.Generate(bgp.GenConfig{Routes: 800, Seed: 80})
	if err != nil {
		t.Fatal(err)
	}
	framed, start, intervals := exportStream(t, table)

	// Batch: Collector -> Series.
	batch := agg.NewSeries(start, time.Minute, intervals)
	coll := NewCollector(table, batch)
	sr := NewStreamReader(bytes.NewReader(framed))
	for {
		d, err := sr.Next()
		if err != nil {
			break
		}
		coll.AddDatagram(d)
	}

	// Stream: RecordSource -> StreamAccumulator. The window covers the
	// exporter's active timeout so no record reaches behind the closed
	// edge.
	rs := NewRecordSource(NewStreamReader(bytes.NewReader(framed)), table)
	acc, err := agg.NewStreamAccumulator(agg.StreamConfig{Start: start, Interval: time.Minute, Window: 8})
	if err != nil {
		t.Fatal(err)
	}
	emitted := 0
	acc.Emit = func(tt int, snap *core.FlowSnapshot) error {
		ref := batch.Snapshot(tt, nil)
		if snap.Len() != ref.Len() {
			t.Fatalf("interval %d: %d flows streamed, %d collected", tt, snap.Len(), ref.Len())
		}
		for i := 0; i < snap.Len(); i++ {
			if snap.Key(i) != ref.Key(i) || snap.Bandwidth(i) != ref.Bandwidth(i) {
				t.Fatalf("interval %d flow %d: stream (%v, %v) != batch (%v, %v)",
					tt, i, snap.Key(i), snap.Bandwidth(i), ref.Key(i), ref.Bandwidth(i))
			}
		}
		emitted++
		return nil
	}
	if err := agg.Stream(rs, acc); err != nil {
		t.Fatal(err)
	}
	if st := acc.Stats(); st.Late != 0 || st.LateBits != 0 {
		t.Errorf("late drops on an in-window stream: %+v", st)
	}
	if emitted == 0 {
		t.Fatal("no intervals emitted")
	}
	if rs.Stats.Records != coll.Stats.Records || rs.Stats.Unrouted != coll.Stats.Unrouted {
		t.Errorf("stats diverge: source %+v vs collector %+v", rs.Stats, coll.Stats)
	}
}
