package netflow

import (
	"fmt"
	"net/netip"
	"time"

	"repro/internal/packet"
)

// flowKey is the v5 flow aggregation key.
type flowKey struct {
	src, dst netip.Addr
	sport    uint16
	dport    uint16
	proto    uint8
}

// cacheEntry is one active flow in the exporter's cache.
type cacheEntry struct {
	first, last time.Time
	packets     uint32
	octets      uint32
	tcpFlags    uint8
}

// ExporterConfig tunes the flow cache.
type ExporterConfig struct {
	// ActiveTimeout flushes long-running flows so their bytes appear in
	// the collector with bounded delay. Default 60 s (routers commonly
	// used 30–120 s).
	ActiveTimeout time.Duration
	// InactiveTimeout expires idle flows. Default 15 s.
	InactiveTimeout time.Duration
	// BootTime anchors SysUptime; defaults to the first packet's time.
	BootTime time.Time
	// EngineID labels the exporter in datagram headers.
	EngineID uint8
}

func (c *ExporterConfig) defaults() {
	if c.ActiveTimeout == 0 {
		c.ActiveTimeout = 60 * time.Second
	}
	if c.InactiveTimeout == 0 {
		c.InactiveTimeout = 15 * time.Second
	}
}

// Exporter turns a packet stream into NetFlow v5 datagrams, modelling a
// router's flow cache: packets matching an entry update it; entries are
// flushed on active/inactive timeout and batched into datagrams of up to
// 30 records. Emit order is deterministic for a deterministic packet
// stream.
type Exporter struct {
	cfg   ExporterConfig
	cache map[flowKey]*cacheEntry
	// order preserves cache insertion order so expiry scans are
	// deterministic (map iteration is not).
	order []flowKey

	now      time.Time
	pending  []Record
	sequence uint32
	emit     func(*Datagram) error
	scratch  []byte
}

// NewExporter creates an exporter delivering datagrams to emit.
func NewExporter(cfg ExporterConfig, emit func(*Datagram) error) *Exporter {
	cfg.defaults()
	return &Exporter{
		cfg:   cfg,
		cache: make(map[flowKey]*cacheEntry),
		emit:  emit,
	}
}

// AddPacket accounts one decoded packet at time ts. Packets must be
// presented in non-decreasing time order.
func (e *Exporter) AddPacket(ts time.Time, sum packet.Summary) error {
	if !sum.DstIP.Is4() || !sum.SrcIP.Is4() {
		return nil // v5 is IPv4-only; silently skip, as routers did
	}
	if e.cfg.BootTime.IsZero() {
		e.cfg.BootTime = ts
	}
	e.now = ts
	if err := e.expire(); err != nil {
		return err
	}
	k := flowKey{sum.SrcIP, sum.DstIP, sum.SrcPort, sum.DstPort, sum.Protocol}
	ent, ok := e.cache[k]
	if !ok {
		ent = &cacheEntry{first: ts}
		e.cache[k] = ent
		e.order = append(e.order, k)
	}
	ent.last = ts
	ent.packets++
	ent.octets += uint32(sum.WireLength)
	return nil
}

// expire flushes entries past their timeouts.
func (e *Exporter) expire() error {
	kept := e.order[:0]
	for _, k := range e.order {
		ent, ok := e.cache[k]
		if !ok {
			continue
		}
		idle := e.now.Sub(ent.last) > e.cfg.InactiveTimeout
		long := e.now.Sub(ent.first) > e.cfg.ActiveTimeout
		if idle || long {
			e.flushEntry(k, ent)
			delete(e.cache, k)
			continue
		}
		kept = append(kept, k)
	}
	e.order = kept
	if len(e.pending) >= MaxRecordsPerDatagram {
		return e.sendPending(MaxRecordsPerDatagram)
	}
	return nil
}

// flushEntry converts a cache entry to a pending record.
func (e *Exporter) flushEntry(k flowKey, ent *cacheEntry) {
	e.pending = append(e.pending, Record{
		SrcAddr: k.src, DstAddr: k.dst,
		Packets: ent.packets, Octets: ent.octets,
		First:    e.uptime(ent.first),
		Last:     e.uptime(ent.last),
		SrcPort:  k.sport,
		DstPort:  k.dport,
		TCPFlags: ent.tcpFlags,
		Proto:    k.proto,
	})
}

func (e *Exporter) uptime(ts time.Time) uint32 {
	d := ts.Sub(e.cfg.BootTime)
	if d < 0 {
		return 0
	}
	return uint32(d / time.Millisecond)
}

// sendPending emits up to n pending records as one datagram.
func (e *Exporter) sendPending(n int) error {
	if n > len(e.pending) {
		n = len(e.pending)
	}
	if n == 0 {
		return nil
	}
	d := &Datagram{
		Header: Header{
			Count:        uint16(n),
			SysUptime:    e.uptime(e.now),
			UnixSecs:     uint32(e.now.Unix()),
			UnixNsecs:    uint32(e.now.Nanosecond()),
			FlowSequence: e.sequence,
			EngineID:     e.cfg.EngineID,
		},
		Records: e.pending[:n:n],
	}
	e.sequence += uint32(n)
	// Deliver before compacting: d.Records aliases the region the
	// compaction below overwrites.
	if e.emit != nil {
		if err := e.emit(d); err != nil {
			return fmt.Errorf("netflow: emitting datagram: %w", err)
		}
	}
	e.pending = append(e.pending[:0], e.pending[n:]...)
	return nil
}

// Flush expires every cached flow and delivers all pending records. Call
// it at end of stream.
func (e *Exporter) Flush() error {
	for _, k := range e.order {
		if ent, ok := e.cache[k]; ok {
			e.flushEntry(k, ent)
			delete(e.cache, k)
		}
	}
	e.order = e.order[:0]
	for len(e.pending) > 0 {
		if err := e.sendPending(MaxRecordsPerDatagram); err != nil {
			return err
		}
	}
	return nil
}

// CachedFlows reports the current flow-cache size.
func (e *Exporter) CachedFlows() int { return len(e.cache) }

// Sequence returns the cumulative number of exported records.
func (e *Exporter) Sequence() uint32 { return e.sequence }
