package netflow

import (
	"bytes"
	"errors"
	"io"
	"testing"
)

func TestStreamRoundtrip(t *testing.T) {
	var buf bytes.Buffer
	sw := NewStreamWriter(&buf)
	var want []Record
	for i := 0; i < 5; i++ {
		r := sampleRecord()
		r.Octets = uint32(1000 + i)
		want = append(want, r)
		d := &Datagram{Header: Header{Count: 1, FlowSequence: uint32(i)}, Records: []Record{r}}
		if err := sw.Write(d); err != nil {
			t.Fatal(err)
		}
	}
	if sw.Count() != 5 {
		t.Errorf("Count = %d", sw.Count())
	}
	sr := NewStreamReader(&buf)
	for i := 0; ; i++ {
		d, err := sr.Next()
		if errors.Is(err, io.EOF) {
			if i != 5 {
				t.Fatalf("read %d datagrams, want 5", i)
			}
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		if d.Records[0] != want[i] {
			t.Errorf("datagram %d: %+v", i, d.Records[0])
		}
		if d.Header.FlowSequence != uint32(i) {
			t.Errorf("datagram %d: sequence %d", i, d.Header.FlowSequence)
		}
	}
}

func TestStreamTruncated(t *testing.T) {
	var buf bytes.Buffer
	sw := NewStreamWriter(&buf)
	d := &Datagram{Header: Header{Count: 1}, Records: []Record{sampleRecord()}}
	if err := sw.Write(d); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	sr := NewStreamReader(bytes.NewReader(raw[:len(raw)-3]))
	if _, err := sr.Next(); !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Errorf("err = %v, want unexpected EOF", err)
	}
}

func TestStreamBogusLength(t *testing.T) {
	sr := NewStreamReader(bytes.NewReader([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0}))
	if _, err := sr.Next(); err == nil {
		t.Error("absurd frame length accepted")
	}
	sr = NewStreamReader(bytes.NewReader([]byte{0, 0, 0, 1, 0}))
	if _, err := sr.Next(); err == nil {
		t.Error("undersized frame length accepted")
	}
}

func TestStreamEmpty(t *testing.T) {
	sr := NewStreamReader(bytes.NewReader(nil))
	if _, err := sr.Next(); !errors.Is(err, io.EOF) {
		t.Errorf("err = %v, want EOF", err)
	}
}
