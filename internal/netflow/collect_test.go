package netflow

import (
	"bytes"
	"math"
	"net/netip"
	"testing"
	"time"

	"repro/internal/agg"
	"repro/internal/bgp"
	"repro/internal/trace"
)

func collectTable(t *testing.T) *bgp.Table {
	t.Helper()
	tab := bgp.NewTable()
	for _, s := range []string{"10.0.0.0/8", "192.0.2.0/24"} {
		if err := tab.Insert(bgp.Route{Prefix: netip.MustParsePrefix(s)}); err != nil {
			t.Fatal(err)
		}
	}
	return tab
}

// header anchored so that uptime == offset from t0.
func anchoredHeader(count uint16) Header {
	return Header{
		Count:     count,
		SysUptime: 0,
		UnixSecs:  uint32(t0.Unix()),
	}
}

func TestCollectorPointFlow(t *testing.T) {
	s := agg.NewSeries(t0, time.Minute, 3)
	c := NewCollector(collectTable(t), s)
	r := Record{
		SrcAddr: aIP, DstAddr: netip.MustParseAddr("10.5.5.5"),
		Octets: 750, First: 70000, Last: 70000, // 70 s in => interval 1
	}
	c.AddDatagram(&Datagram{Header: anchoredHeader(1), Records: []Record{r}})
	if c.Stats.Routed != 1 {
		t.Fatalf("stats = %+v", c.Stats)
	}
	got := s.Bandwidth(netip.MustParsePrefix("10.0.0.0/8"), 1)
	want := 750 * 8.0 / 60
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("bandwidth = %v, want %v", got, want)
	}
}

// TestCollectorSpreadsLongFlow: a record spanning 3 intervals must have
// its octets apportioned by time overlap, not dumped into one interval.
func TestCollectorSpreadsLongFlow(t *testing.T) {
	s := agg.NewSeries(t0, time.Minute, 4)
	c := NewCollector(collectTable(t), s)
	// Flow from 00:30 to 02:30 (in minutes:seconds from t0): spans
	// interval 0 (30 s), 1 (60 s), 2 (30 s). 1200 octets over 120 s.
	r := Record{
		SrcAddr: aIP, DstAddr: netip.MustParseAddr("10.1.1.1"),
		Octets: 1200, First: 30000, Last: 150000,
	}
	c.AddDatagram(&Datagram{Header: anchoredHeader(1), Records: []Record{r}})
	p := netip.MustParsePrefix("10.0.0.0/8")
	totalBits := 1200 * 8.0
	wants := []float64{
		totalBits * 0.25 / 60, // 30 of 120 s
		totalBits * 0.50 / 60,
		totalBits * 0.25 / 60,
		0,
	}
	for i, w := range wants {
		if got := s.Bandwidth(p, i); math.Abs(got-w) > 1e-9 {
			t.Errorf("interval %d: %v, want %v", i, got, w)
		}
	}
}

func TestCollectorUnroutedAndOutOfRange(t *testing.T) {
	s := agg.NewSeries(t0, time.Minute, 1)
	c := NewCollector(collectTable(t), s)
	recs := []Record{
		{SrcAddr: aIP, DstAddr: netip.MustParseAddr("8.8.8.8"), Octets: 1, First: 0, Last: 0},
		{SrcAddr: aIP, DstAddr: netip.MustParseAddr("10.0.0.1"), Octets: 1, First: 600000, Last: 600000},
	}
	c.AddDatagram(&Datagram{Header: anchoredHeader(2), Records: recs})
	if c.Stats.Unrouted != 1 || c.Stats.OutOfRange != 1 || c.Stats.Routed != 0 {
		t.Errorf("stats = %+v", c.Stats)
	}
}

// TestNetflowPathMatchesPcapPath: the flow-record ingest path must
// reconstruct (approximately) the same per-prefix interval bandwidths as
// direct packet aggregation — the property that lets an operator deploy
// the classifier behind either feed.
func TestNetflowPathMatchesPcapPath(t *testing.T) {
	table, err := bgp.Generate(bgp.GenConfig{Routes: 800, Seed: 80})
	if err != nil {
		t.Fatal(err)
	}
	link, err := trace.NewLink(trace.LinkConfig{
		Table: table, Flows: 150, MeanLoadBps: 1e6, Seed: 80,
		Profile: trace.FlatProfile(),
	})
	if err != nil {
		t.Fatal(err)
	}
	const intervals = 4
	fast := link.GenerateSeries(t0, time.Minute, intervals)

	// Emit packets, then run them through BOTH ingest paths.
	var buf bytes.Buffer
	em := trace.NewPacketEmitter(81)
	if _, err := em.Emit(&buf, fast); err != nil {
		t.Fatal(err)
	}
	direct := agg.NewSeries(t0, time.Minute, intervals)
	if _, _, err := agg.ReadPcap(bytes.NewReader(buf.Bytes()), table, direct); err != nil {
		t.Fatal(err)
	}

	viaFlow := agg.NewSeries(t0, time.Minute, intervals)
	coll := NewCollector(table, viaFlow)
	exp := NewExporter(ExporterConfig{ActiveTimeout: 30 * time.Second, InactiveTimeout: 10 * time.Second},
		func(d *Datagram) error {
			// Exercise the wire format in the loop.
			raw, err := d.Encode(nil)
			if err != nil {
				return err
			}
			back, err := Decode(raw)
			if err != nil {
				return err
			}
			coll.AddDatagram(back)
			return nil
		})
	r, err := agg.NewPcapPacketSource(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	for {
		ts, sum, err := r.Next()
		if err != nil {
			break
		}
		if err := exp.AddPacket(ts, sum); err != nil {
			t.Fatal(err)
		}
	}
	if err := exp.Flush(); err != nil {
		t.Fatal(err)
	}

	// Compare per-interval totals: flow records smear bytes across
	// interval edges (timeout granularity), so allow 15%.
	for i := 0; i < intervals; i++ {
		a, b := direct.TotalBandwidth(i), viaFlow.TotalBandwidth(i)
		if a == 0 && b == 0 {
			continue
		}
		if rel := math.Abs(a-b) / math.Max(a, b); rel > 0.15 {
			t.Errorf("interval %d: direct %v vs netflow %v (rel %.3f)", i, a, b, rel)
		}
	}
	// Total volume must be conserved almost exactly.
	var sa, sb float64
	for i := 0; i < intervals; i++ {
		sa += direct.TotalBandwidth(i)
		sb += viaFlow.TotalBandwidth(i)
	}
	if rel := math.Abs(sa-sb) / sa; rel > 0.02 {
		t.Errorf("total volume drift %.4f (direct %v, netflow %v)", rel, sa, sb)
	}
}
