// Package netflow implements NetFlow version 5 — the flow-record export
// format that carried backbone measurement in the paper's era — as an
// alternative ingest path for the classification pipeline: instead of
// decoding raw packets from a capture, an operator can feed exported
// flow records straight into the per-prefix bandwidth series.
//
// The package provides the v5 wire format (datagram encoder/decoder), a
// flow-cache Exporter that turns a packet stream into records with
// active/inactive timeout semantics, and an aggregation bridge into
// agg.Series.
package netflow

import (
	"encoding/binary"
	"errors"
	"fmt"
	"net/netip"
	"time"
)

// ErrCountMismatch reports a datagram whose header record count
// disagrees with the payload length — a truncated export, a corrupted
// count field, or trailing garbage after the last record. Decode wraps
// it with the observed sizes; match with errors.Is. A collector should
// drop the whole datagram (record boundaries cannot be trusted) and
// count it as a decode error rather than guessing.
var ErrCountMismatch = errors.New("netflow: header count disagrees with payload length")

// Version is the only NetFlow version this package speaks.
const Version = 5

// Wire sizes of the v5 format.
const (
	HeaderLen = 24
	RecordLen = 48
	// MaxRecordsPerDatagram is the v5 limit (30 records ≈ 1464 bytes,
	// under a 1500-byte MTU).
	MaxRecordsPerDatagram = 30
)

// Header is a NetFlow v5 datagram header.
type Header struct {
	// Count is the number of records in the datagram (1..30).
	Count uint16
	// SysUptime is the exporter uptime in milliseconds.
	SysUptime uint32
	// UnixSecs and UnixNsecs give the exporter's wall clock.
	UnixSecs  uint32
	UnixNsecs uint32
	// FlowSequence is the cumulative count of exported flows.
	FlowSequence uint32
	// EngineType and EngineID identify the exporting slot.
	EngineType, EngineID uint8
	// SamplingInterval carries the sampling mode and rate (v5 packs
	// a 2-bit mode and 14-bit rate; stored raw here).
	SamplingInterval uint16
}

// Record is one NetFlow v5 flow record.
type Record struct {
	SrcAddr, DstAddr  netip.Addr // IPv4 only in v5
	NextHop           netip.Addr
	InputIf, OutputIf uint16
	Packets, Octets   uint32
	// First and Last are SysUptime values (ms) at the first and last
	// packet of the flow.
	First, Last      uint32
	SrcPort, DstPort uint16
	TCPFlags         uint8
	Proto            uint8
	TOS              uint8
	SrcAS, DstAS     uint16
	SrcMask, DstMask uint8
}

// Datagram couples a header with its records.
type Datagram struct {
	Header  Header
	Records []Record
}

// Encode serializes the datagram in network byte order. It validates the
// record count against the header and the v5 limit.
func (d *Datagram) Encode(buf []byte) ([]byte, error) {
	if len(d.Records) == 0 || len(d.Records) > MaxRecordsPerDatagram {
		return nil, fmt.Errorf("netflow: %d records per datagram (want 1..%d)", len(d.Records), MaxRecordsPerDatagram)
	}
	if int(d.Header.Count) != len(d.Records) {
		return nil, fmt.Errorf("netflow: header count %d != %d records", d.Header.Count, len(d.Records))
	}
	buf = buf[:0]
	buf = binary.BigEndian.AppendUint16(buf, Version)
	buf = binary.BigEndian.AppendUint16(buf, d.Header.Count)
	buf = binary.BigEndian.AppendUint32(buf, d.Header.SysUptime)
	buf = binary.BigEndian.AppendUint32(buf, d.Header.UnixSecs)
	buf = binary.BigEndian.AppendUint32(buf, d.Header.UnixNsecs)
	buf = binary.BigEndian.AppendUint32(buf, d.Header.FlowSequence)
	buf = append(buf, d.Header.EngineType, d.Header.EngineID)
	buf = binary.BigEndian.AppendUint16(buf, d.Header.SamplingInterval)
	for i := range d.Records {
		r := &d.Records[i]
		if !r.SrcAddr.Is4() || !r.DstAddr.Is4() {
			return nil, fmt.Errorf("netflow: record %d: v5 carries IPv4 only", i)
		}
		src, dst := r.SrcAddr.As4(), r.DstAddr.As4()
		var hop [4]byte
		if r.NextHop.Is4() {
			hop = r.NextHop.As4()
		}
		buf = append(buf, src[:]...)
		buf = append(buf, dst[:]...)
		buf = append(buf, hop[:]...)
		buf = binary.BigEndian.AppendUint16(buf, r.InputIf)
		buf = binary.BigEndian.AppendUint16(buf, r.OutputIf)
		buf = binary.BigEndian.AppendUint32(buf, r.Packets)
		buf = binary.BigEndian.AppendUint32(buf, r.Octets)
		buf = binary.BigEndian.AppendUint32(buf, r.First)
		buf = binary.BigEndian.AppendUint32(buf, r.Last)
		buf = binary.BigEndian.AppendUint16(buf, r.SrcPort)
		buf = binary.BigEndian.AppendUint16(buf, r.DstPort)
		buf = append(buf, 0) // pad1
		buf = append(buf, r.TCPFlags, r.Proto, r.TOS)
		buf = binary.BigEndian.AppendUint16(buf, r.SrcAS)
		buf = binary.BigEndian.AppendUint16(buf, r.DstAS)
		buf = append(buf, r.SrcMask, r.DstMask)
		buf = append(buf, 0, 0) // pad2
	}
	return buf, nil
}

// Decode parses one v5 datagram. The returned Datagram does not alias
// data.
func Decode(data []byte) (*Datagram, error) {
	var d Datagram
	if err := DecodeInto(data, &d); err != nil {
		return nil, err
	}
	return &d, nil
}

// DecodeInto parses one v5 datagram into d, reusing d.Records' capacity
// so a caller decoding a socket's datagrams one after another (the
// daemon's ingest readers) allocates nothing in steady state. On error d
// is left in an unspecified state; on success d.Records does not alias
// data. The fast path of Decode.
func DecodeInto(data []byte, d *Datagram) error {
	if len(data) < HeaderLen {
		return fmt.Errorf("netflow: datagram of %d bytes shorter than header", len(data))
	}
	if v := binary.BigEndian.Uint16(data[0:2]); v != Version {
		return fmt.Errorf("netflow: version %d, want %d", v, Version)
	}
	d.Header.Count = binary.BigEndian.Uint16(data[2:4])
	d.Header.SysUptime = binary.BigEndian.Uint32(data[4:8])
	d.Header.UnixSecs = binary.BigEndian.Uint32(data[8:12])
	d.Header.UnixNsecs = binary.BigEndian.Uint32(data[12:16])
	d.Header.FlowSequence = binary.BigEndian.Uint32(data[16:20])
	d.Header.EngineType = data[20]
	d.Header.EngineID = data[21]
	d.Header.SamplingInterval = binary.BigEndian.Uint16(data[22:24])
	n := int(d.Header.Count)
	if n == 0 || n > MaxRecordsPerDatagram {
		return fmt.Errorf("netflow: record count %d out of range", n)
	}
	if want := HeaderLen + n*RecordLen; len(data) != want {
		return fmt.Errorf("%w: %d bytes for %d records, want %d", ErrCountMismatch, len(data), n, want)
	}
	if cap(d.Records) < n {
		d.Records = make([]Record, n)
	} else {
		d.Records = d.Records[:n]
	}
	for i := 0; i < n; i++ {
		b := data[HeaderLen+i*RecordLen:]
		r := &d.Records[i]
		r.SrcAddr = netip.AddrFrom4([4]byte(b[0:4]))
		r.DstAddr = netip.AddrFrom4([4]byte(b[4:8]))
		r.NextHop = netip.AddrFrom4([4]byte(b[8:12]))
		r.InputIf = binary.BigEndian.Uint16(b[12:14])
		r.OutputIf = binary.BigEndian.Uint16(b[14:16])
		r.Packets = binary.BigEndian.Uint32(b[16:20])
		r.Octets = binary.BigEndian.Uint32(b[20:24])
		r.First = binary.BigEndian.Uint32(b[24:28])
		r.Last = binary.BigEndian.Uint32(b[28:32])
		r.SrcPort = binary.BigEndian.Uint16(b[32:34])
		r.DstPort = binary.BigEndian.Uint16(b[34:36])
		r.TCPFlags = b[37]
		r.Proto = b[38]
		r.TOS = b[39]
		r.SrcAS = binary.BigEndian.Uint16(b[40:42])
		r.DstAS = binary.BigEndian.Uint16(b[42:44])
		r.SrcMask = b[44]
		r.DstMask = b[45]
	}
	return nil
}

// Timestamps converts the record's uptime-relative First/Last into wall
// times using the datagram header's (SysUptime, UnixSecs, UnixNsecs)
// anchor.
func (h Header) Timestamps(r Record) (first, last time.Time) {
	boot := time.Unix(int64(h.UnixSecs), int64(h.UnixNsecs)).
		Add(-time.Duration(h.SysUptime) * time.Millisecond)
	first = boot.Add(time.Duration(r.First) * time.Millisecond)
	last = boot.Add(time.Duration(r.Last) * time.Millisecond)
	return first, last
}
