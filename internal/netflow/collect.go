package netflow

import (
	"repro/internal/agg"
	"repro/internal/bgp"
)

// CollectorStats counts record attribution outcomes.
type CollectorStats struct {
	Datagrams  uint64
	Records    uint64
	Routed     uint64
	Unrouted   uint64
	OutOfRange uint64
}

// Collector aggregates NetFlow records into a per-prefix bandwidth
// series — the flow-record twin of agg.Aggregator. A record's octets are
// spread uniformly over its [First, Last] span, clipped to the series
// window, so long flows crossing interval boundaries are apportioned
// correctly (assigning all bytes to one interval would let the active
// timeout alias the diurnal signal). The spreading arithmetic lives in
// agg (Series.AddRecord), shared with the streaming accumulator, so
// batch collection and streaming ingestion of the same records produce
// bit-identical series.
type Collector struct {
	table  *bgp.Table
	series *agg.Series

	// Stats counts attribution outcomes.
	Stats CollectorStats
}

// NewCollector creates a collector writing into series.
func NewCollector(table *bgp.Table, series *agg.Series) *Collector {
	return &Collector{table: table, series: series}
}

// Series returns the series under construction.
func (c *Collector) Series() *agg.Series { return c.series }

// AddDatagram attributes every record of the datagram.
func (c *Collector) AddDatagram(d *Datagram) {
	c.Stats.Datagrams++
	for i := range d.Records {
		c.addRecord(d.Header, d.Records[i])
	}
}

func (c *Collector) addRecord(h Header, r Record) {
	c.Stats.Records++
	rec, ok := Attribute(c.table, h, r)
	if !ok {
		c.Stats.Unrouted++
		return
	}
	if c.series.AddRecord(rec) {
		c.Stats.Routed++
	} else {
		c.Stats.OutOfRange++
	}
}

// Attribute longest-prefix matches one v5 record and normalises it to
// the unified agg.Record form (a point record for degenerate spans),
// reporting false for unrouted destinations. It is the single
// record→flow attribution step shared by the batch Collector, the
// streaming RecordSource and the serving daemon's UDP ingest, so every
// ingest path classifies identical traffic identically.
func Attribute(table *bgp.Table, h Header, r Record) (agg.Record, bool) {
	route, ok := table.Lookup(r.DstAddr)
	if !ok {
		return agg.Record{}, false
	}
	first, last := h.Timestamps(r)
	rec := agg.Record{
		Prefix: route.Prefix,
		Time:   first,
		Bits:   float64(r.Octets) * 8,
	}
	if span := last.Sub(first); span > 0 {
		rec.Span = span
	}
	return rec, true
}
