package netflow

import (
	"time"

	"repro/internal/agg"
	"repro/internal/bgp"
)

// CollectorStats counts record attribution outcomes.
type CollectorStats struct {
	Datagrams  uint64
	Records    uint64
	Routed     uint64
	Unrouted   uint64
	OutOfRange uint64
}

// Collector aggregates NetFlow records into a per-prefix bandwidth
// series — the flow-record twin of agg.Aggregator. A record's octets are
// spread uniformly over its [First, Last] span, clipped to the series
// window, so long flows crossing interval boundaries are apportioned
// correctly (assigning all bytes to one interval would let the active
// timeout alias the diurnal signal).
type Collector struct {
	table  *bgp.Table
	series *agg.Series

	// Stats counts attribution outcomes.
	Stats CollectorStats
}

// NewCollector creates a collector writing into series.
func NewCollector(table *bgp.Table, series *agg.Series) *Collector {
	return &Collector{table: table, series: series}
}

// Series returns the series under construction.
func (c *Collector) Series() *agg.Series { return c.series }

// AddDatagram attributes every record of the datagram.
func (c *Collector) AddDatagram(d *Datagram) {
	c.Stats.Datagrams++
	for i := range d.Records {
		c.addRecord(d.Header, d.Records[i])
	}
}

func (c *Collector) addRecord(h Header, r Record) {
	c.Stats.Records++
	route, ok := c.table.Lookup(r.DstAddr)
	if !ok {
		c.Stats.Unrouted++
		return
	}
	first, last := h.Timestamps(r)
	bits := float64(r.Octets) * 8
	span := last.Sub(first)
	if span <= 0 {
		// Point flow: all bytes in one interval.
		t := c.series.IntervalOf(first)
		if t < 0 {
			c.Stats.OutOfRange++
			return
		}
		c.Stats.Routed++
		c.series.AddBits(route.Prefix, t, bits)
		return
	}
	// Spread uniformly across the covered intervals.
	routed := false
	for cur := first; cur.Before(last); {
		t := c.series.IntervalOf(cur)
		intervalEnd := c.series.Start.Add(time.Duration(t+1) * c.series.Interval)
		if t < 0 {
			// Before the window: skip ahead; after: done.
			if cur.Before(c.series.Start) {
				cur = c.series.Start
				continue
			}
			break
		}
		segEnd := last
		if intervalEnd.Before(segEnd) {
			segEnd = intervalEnd
		}
		frac := float64(segEnd.Sub(cur)) / float64(span)
		c.series.AddBits(route.Prefix, t, bits*frac)
		routed = true
		cur = segEnd
	}
	if routed {
		c.Stats.Routed++
	} else {
		c.Stats.OutOfRange++
	}
}
