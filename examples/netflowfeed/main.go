// NetFlow feed: classify elephants from flow records instead of packets.
//
// Backbone operators of the paper's era rarely had packet capture on
// every link — they had NetFlow. This example runs the full flow-export
// path: packets from a synthetic link go through a router-style flow
// cache (active/inactive timeouts), are exported as NetFlow v5
// datagrams, decoded by a collector that spreads each record's bytes
// over the intervals it covers, and the resulting bandwidth series is
// classified with the paper's scheme. The elephant sets are then
// compared against direct packet aggregation of the same traffic.
//
// Run with:
//
//	go run ./examples/netflowfeed
package main

import (
	"bytes"
	"fmt"
	"io"
	"log"
	"time"

	"repro/internal/agg"
	"repro/internal/bgp"
	"repro/internal/core"
	"repro/internal/netflow"
	"repro/internal/scheme"
	"repro/internal/trace"
)

func main() {
	table, err := bgp.Generate(bgp.GenConfig{Routes: 1200, Seed: 21})
	if err != nil {
		log.Fatal(err)
	}
	link, err := trace.NewLink(trace.LinkConfig{
		Name:        "edge",
		Profile:     trace.FlatProfile(),
		MeanLoadBps: 2e6,
		Flows:       300,
		Table:       table,
		Seed:        21,
	})
	if err != nil {
		log.Fatal(err)
	}
	start := time.Date(2001, time.July, 24, 9, 0, 0, 0, time.UTC)
	const intervals = 6
	series := link.GenerateSeries(start, time.Minute, intervals)

	// Emit the traffic as real packets.
	var capture bytes.Buffer
	if _, err := trace.NewPacketEmitter(22).Emit(&capture, series); err != nil {
		log.Fatal(err)
	}
	raw := capture.Bytes()
	fmt.Printf("capture: %.1f MiB of packets\n", float64(len(raw))/(1<<20))

	// Path A: direct packet aggregation (what cmd/elephants does).
	direct := agg.NewSeries(start, time.Minute, intervals)
	if _, _, err := agg.ReadPcap(bytes.NewReader(raw), table, direct); err != nil {
		log.Fatal(err)
	}

	// Path B: router flow cache -> NetFlow v5 datagrams -> collector.
	viaFlow := agg.NewSeries(start, time.Minute, intervals)
	collector := netflow.NewCollector(table, viaFlow)
	var datagrams, bytesOnWire int
	exporter := netflow.NewExporter(netflow.ExporterConfig{
		ActiveTimeout:   30 * time.Second,
		InactiveTimeout: 10 * time.Second,
	}, func(d *netflow.Datagram) error {
		wire, err := d.Encode(nil) // the UDP payload a router would send
		if err != nil {
			return err
		}
		datagrams++
		bytesOnWire += len(wire)
		decoded, err := netflow.Decode(wire)
		if err != nil {
			return err
		}
		collector.AddDatagram(decoded)
		return nil
	})
	src, err := agg.NewPcapPacketSource(bytes.NewReader(raw))
	if err != nil {
		log.Fatal(err)
	}
	for {
		ts, sum, err := src.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			log.Fatal(err)
		}
		if err := exporter.AddPacket(ts, sum); err != nil {
			log.Fatal(err)
		}
	}
	if err := exporter.Flush(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("netflow: %d records in %d datagrams (%.1f KiB — %.2f%% of the capture)\n\n",
		collector.Stats.Records, datagrams, float64(bytesOnWire)/1024,
		100*float64(bytesOnWire)/float64(len(raw)))

	// Classify both series and compare; the scheme is a registry spec,
	// built fresh per series (the classifier may be stateful).
	classify := func(s *agg.Series) []map[string]bool {
		cfg, err := scheme.MustParse("load:beta=0.8+single").Config()
		if err != nil {
			log.Fatal(err)
		}
		pipe, err := core.NewPipeline(cfg)
		if err != nil {
			log.Fatal(err)
		}
		var out []map[string]bool
		var snap *core.FlowSnapshot
		for t := 0; t < s.Intervals; t++ {
			snap = s.Snapshot(t, snap)
			res, err := pipe.Step(snap)
			if err != nil {
				log.Fatal(err)
			}
			set := make(map[string]bool, res.Elephants.Len())
			for _, p := range res.Elephants.Flows() {
				set[p.String()] = true
			}
			out = append(out, set)
		}
		return out
	}
	a, b := classify(direct), classify(viaFlow)
	fmt.Println("interval  elephants(pcap)  elephants(netflow)  agreement")
	for t := 0; t < intervals; t++ {
		inter := 0
		for p := range a[t] {
			if b[t][p] {
				inter++
			}
		}
		union := len(a[t]) + len(b[t]) - inter
		j := 1.0
		if union > 0 {
			j = float64(inter) / float64(union)
		}
		fmt.Printf("%8d  %15d  %18d  %8.2f\n", t, len(a[t]), len(b[t]), j)
	}
	fmt.Println("\nThe classifier is feed-agnostic: flow records compress the capture")
	fmt.Println("by orders of magnitude yet select (nearly) the same elephants.")
}
