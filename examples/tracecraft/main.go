// Tracecraft: build a pcap capture packet by packet with the low-level
// substrate, then read it back and classify it.
//
// The other examples use the fast path (trace.Link writes bandwidths
// straight into an agg.Series). This one exercises the full wire-format
// path instead: frames are constructed with packet.Builder, written with
// pcap.Writer, re-read with agg.ReadPcap (decode + longest-prefix match
// + interval aggregation) and finally classified. It demonstrates that
// the classification layer is agnostic to how the bandwidth series was
// obtained — exactly the property a drop-in deployment needs.
//
// Run with:
//
//	go run ./examples/tracecraft
package main

import (
	"bytes"
	"fmt"
	"log"
	"math/rand"
	"net/netip"
	"time"

	"repro/internal/agg"
	"repro/internal/bgp"
	"repro/internal/core"
	"repro/internal/packet"
	"repro/internal/pcap"
	"repro/internal/scheme"
)

func main() {
	// A tiny hand-made routing table: three /16s and a /24 carved out
	// of one of them, to show longest-prefix-match attribution.
	table := bgp.NewTable()
	for _, s := range []string{"10.1.0.0/16", "10.2.0.0/16", "10.3.0.0/16", "10.1.99.0/24"} {
		if err := table.Insert(bgp.Route{Prefix: netip.MustParsePrefix(s), OriginAS: 65000, Tier: bgp.Tier2}); err != nil {
			log.Fatal(err)
		}
	}

	// Craft a capture: 30 minutes, six 5-minute intervals. 10.1.99.0/24
	// is the elephant: it receives a steady ~39 kb/s. The /16s get light
	// sporadic traffic.
	start := time.Date(2001, time.July, 24, 9, 0, 0, 0, time.UTC)
	var buf bytes.Buffer
	w := pcap.NewWriter(&buf, pcap.Header{LinkType: pcap.LinkTypeEthernet, SnapLen: 65535})
	if err := w.WriteHeader(); err != nil {
		log.Fatal(err)
	}

	builder := packet.NewBuilder()
	rng := rand.New(rand.NewSource(3))
	writeFrame := func(ts time.Time, dst netip.Addr, size int) {
		frame, err := builder.Build(packet.FrameSpec{
			SrcIP:      netip.AddrFrom4([4]byte{192, 0, 2, byte(1 + rng.Intn(250))}),
			DstIP:      dst,
			Protocol:   packet.IPProtocolTCP,
			SrcPort:    uint16(1024 + rng.Intn(60000)),
			DstPort:    80,
			PayloadLen: size,
		})
		if err != nil {
			log.Fatal(err)
		}
		if err := w.WritePacket(pcap.CaptureInfo{Timestamp: ts, CaptureLength: len(frame), Length: len(frame)}, frame); err != nil {
			log.Fatal(err)
		}
	}

	elephant := netip.MustParseAddr("10.1.99.7")
	mice := []netip.Addr{
		netip.MustParseAddr("10.1.5.9"), // falls under 10.1.0.0/16, not the /24
		netip.MustParseAddr("10.2.77.1"),
		netip.MustParseAddr("10.3.14.2"),
	}
	const horizon = 30 * time.Minute
	// Elephant: one 1200-byte frame every 250 ms ≈ 39 kb/s.
	for off := time.Duration(0); off < horizon; off += 250 * time.Millisecond {
		writeFrame(start.Add(off), elephant, 1200)
	}
	// Mice: a small frame every ~2 s to a random mouse prefix.
	for off := time.Duration(0); off < horizon; off += 2 * time.Second {
		writeFrame(start.Add(off), mice[rng.Intn(len(mice))], 260)
	}

	fmt.Printf("crafted capture: %.1f KiB\n", float64(buf.Len())/1024)

	// Read it back through the measurement pipeline.
	series := agg.NewSeries(start, 5*time.Minute, 6)
	frames, stats, err := agg.ReadPcap(&buf, table, series)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("read back: %d frames, %d routed, %d unrouted, %d flows\n\n",
		frames, stats.Routed, stats.Unrouted, series.NumFlows())

	// Classify. With so few flows the aest estimator has nothing to chew
	// on, so the spec names the constant-load detector; MinFlows is a
	// pipeline-level setting on the spec, outside the grammar.
	sp := scheme.MustParse("load:beta=0.8+single")
	sp.MinFlows = 1 // tiny demo: classify even with a handful of flows
	cfg, err := sp.Config()
	if err != nil {
		log.Fatal(err)
	}
	pipe, err := core.NewPipeline(cfg)
	if err != nil {
		log.Fatal(err)
	}
	var snap *core.FlowSnapshot
	for t := 0; t < series.Intervals; t++ {
		snap = series.Snapshot(t, snap)
		res, err := pipe.Step(snap)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("interval %d: elephants:", t)
		for _, p := range res.Elephants.Flows() {
			fmt.Printf(" %s (%.1f kb/s)", p, series.Bandwidth(p, t)/1e3)
		}
		fmt.Println()
	}
	fmt.Println("\nnote: 10.1.99.0/24 wins over 10.1.0.0/16 by longest-prefix match.")
}
