// Quickstart: classify elephant flows on a synthetic backbone link.
//
// This is the smallest end-to-end use of the library: build a BGP table,
// synthesize one link's traffic, and run the paper's two-feature
// ("latent heat") classification interval by interval, printing the
// elephant count and the share of traffic they carry.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/bgp"
	"repro/internal/core"
	"repro/internal/scheme"
	"repro/internal/trace"
)

func main() {
	// 1. A routing table defines the flow granularity: one flow per BGP
	// destination prefix, as in the paper.
	table, err := bgp.Generate(bgp.GenConfig{Routes: 5000, Seed: 42})
	if err != nil {
		log.Fatal(err)
	}

	// 2. A synthetic link stands in for the paper's OC-12 capture.
	link, err := trace.NewLink(trace.LinkConfig{
		Name:        "demo",
		Profile:     trace.WestCoastProfile(),
		MeanLoadBps: 100e6, // 100 Mbit/s average
		Flows:       2000,
		Table:       table,
		Seed:        42,
	})
	if err != nil {
		log.Fatal(err)
	}
	start := time.Date(2001, time.July, 24, 9, 0, 0, 0, time.UTC)
	series := link.GenerateSeries(start, 5*time.Minute, 48) // 4 hours

	// 3. Name the paper's pipeline as a scheme spec: 0.8-constant-load
	// threshold detection with the latent-heat classifier over a
	// one-hour (12-slot) window (EWMA alpha defaults to 0.5). Any other
	// registered spec — "aest+latent", "topk:k=50", "misragries:k=100" —
	// drops in here unchanged; scheme.List() enumerates them.
	cfg, err := scheme.MustParse("load:beta=0.8+latent:window=12").Config()
	if err != nil {
		log.Fatal(err)
	}
	pipe, err := core.NewPipeline(cfg)
	if err != nil {
		log.Fatal(err)
	}

	// 4. Classify interval by interval, as an online TE system would.
	// The columnar snapshot is reused across intervals: the pipeline
	// copies out everything that must outlive the interval.
	fmt.Println("interval  time   flows  elephants  load(Mb/s)  eleph.frac  thresh(kb/s)")
	var snapshot *core.FlowSnapshot
	for t := 0; t < series.Intervals; t++ {
		snapshot = series.Snapshot(t, snapshot)
		res, err := pipe.Step(snapshot)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%8d  %s  %5d  %9d  %10.1f  %10.3f  %12.1f\n",
			t, series.IntervalTime(t).Format("15:04"), res.ActiveFlows,
			res.ElephantCount(), res.TotalLoad/1e6, res.LoadFraction(),
			res.Threshold/1e3)
	}
}
