// Traffic engineering: the paper's motivating application.
//
// Elephant flows are pinned to a dedicated path (think: an MPLS LSP
// engineered for the heavy hitters) while mice stay on the default IGP
// path. A flow changing class forces a reroute — operationally costly
// and potentially reordering traffic — so the classifier must be stable
// as well as accurate.
//
// This example runs the same traffic through the single-feature and the
// two-feature (latent heat) classifiers and compares:
//
//   - how balanced the two paths are (elephant-path load share), and
//   - how many flow reroutes each classifier causes.
//
// The punchline mirrors the paper: both schemes move a similar share of
// traffic, but the latent-heat classifier needs far fewer reroutes.
//
// Run with:
//
//	go run ./examples/trafficeng
package main

import (
	"fmt"
	"log"
	"net/netip"
	"time"

	"repro/internal/agg"
	"repro/internal/bgp"
	"repro/internal/core"
	"repro/internal/scheme"
	"repro/internal/trace"
)

func main() {
	table, err := bgp.Generate(bgp.GenConfig{Routes: 8000, Seed: 7})
	if err != nil {
		log.Fatal(err)
	}
	link, err := trace.NewLink(trace.LinkConfig{
		Name:        "ingress",
		Profile:     trace.EastCoastProfile(),
		MeanLoadBps: 200e6,
		Flows:       3000,
		Table:       table,
		Seed:        7,
	})
	if err != nil {
		log.Fatal(err)
	}
	start := time.Date(2001, time.July, 24, 9, 0, 0, 0, time.UTC)
	series := link.GenerateSeries(start, 5*time.Minute, 144) // 12 hours

	fmt.Println("scheme          mean eleph-path share   reroutes   reroutes/interval")
	// Both contenders come from the scheme registry; the comparison is
	// two specs differing only in the classifier component.
	for _, run := range []struct {
		name string
		spec string
	}{
		{"single-feature", "load+single"},
		{"latent-heat", "load+latent"},
	} {
		share, reroutes := simulate(series, mustPipeline(run.spec))
		fmt.Printf("%-14s  %21.3f   %8d   %17.1f\n",
			run.name, share, reroutes, float64(reroutes)/float64(series.Intervals))
	}
}

// simulate routes each interval's traffic over two paths according to
// the classifier's elephant set and tallies reroutes: class changes of
// flows that carry traffic in the interval.
func simulate(series *agg.Series, pipe *core.Pipeline) (meanShare float64, reroutes int) {
	onElephantPath := make(map[netip.Prefix]bool)
	var snap *core.FlowSnapshot
	for t := 0; t < series.Intervals; t++ {
		snap = series.Snapshot(t, snap)
		res, err := pipe.Step(snap)
		if err != nil {
			log.Fatal(err)
		}
		var elephantLoad float64
		for i := 0; i < snap.Len(); i++ {
			p := snap.Key(i)
			nowElephant := res.Elephants.Contains(p)
			if nowElephant {
				elephantLoad += snap.Bandwidth(i)
			}
			if was, seen := onElephantPath[p]; seen && was != nowElephant {
				reroutes++
			}
			onElephantPath[p] = nowElephant
		}
		if totalLoad := snap.TotalLoad(); totalLoad > 0 {
			meanShare += elephantLoad / totalLoad
		}
	}
	return meanShare / float64(series.Intervals), reroutes
}

func mustPipeline(spec string) *core.Pipeline {
	cfg, err := scheme.MustParse(spec).Config()
	if err != nil {
		log.Fatal(err)
	}
	pipe, err := core.NewPipeline(cfg)
	if err != nil {
		log.Fatal(err)
	}
	return pipe
}
