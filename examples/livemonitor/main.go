// Live monitor: online elephant classification of a streaming feed.
//
// The pipeline in this repository is streaming-first: it consumes one
// measurement interval at a time and never looks ahead, so it can sit
// directly behind a live packet feed. This example simulates that
// deployment: a goroutine "measures" a link and delivers one interval
// snapshot per tick over a channel; the monitor classifies each snapshot
// as it arrives and prints a rolling status line, flagging promotions
// and demotions (the reroute events a TE controller would act on).
//
// Run with:
//
//	go run ./examples/livemonitor
package main

import (
	"fmt"
	"log"
	"sort"
	"time"

	"repro/internal/bgp"
	"repro/internal/core"
	"repro/internal/trace"
)

// snapshotMsg is one measurement interval delivered by the feed.
type snapshotMsg struct {
	interval int
	at       time.Time
	flows    *core.FlowSnapshot
}

func main() {
	table, err := bgp.Generate(bgp.GenConfig{Routes: 4000, Seed: 11})
	if err != nil {
		log.Fatal(err)
	}
	link, err := trace.NewLink(trace.LinkConfig{
		Name:        "live",
		Profile:     trace.WestCoastProfile(),
		MeanLoadBps: 80e6,
		Flows:       1200,
		Table:       table,
		Seed:        11,
	})
	if err != nil {
		log.Fatal(err)
	}

	const intervals = 36 // 3 hours of 5-minute slots
	start := time.Date(2001, time.July, 24, 9, 0, 0, 0, time.UTC)
	series := link.GenerateSeries(start, 5*time.Minute, intervals)

	// The feed: one snapshot per tick. A real deployment would put the
	// packet capture + aggregation pipeline here.
	feed := make(chan snapshotMsg)
	go func() {
		defer close(feed)
		for t := 0; t < series.Intervals; t++ {
			feed <- snapshotMsg{
				interval: t,
				at:       series.IntervalTime(t),
				// Fresh snapshot per tick: it crosses a goroutine, so
				// the usual single-owner reuse does not apply.
				flows: series.Snapshot(t, nil),
			}
		}
	}()

	lh, err := core.NewLatentHeatClassifier(12)
	if err != nil {
		log.Fatal(err)
	}
	det, err := core.NewConstantLoadDetector(0.8)
	if err != nil {
		log.Fatal(err)
	}
	pipe, err := core.NewPipeline(core.Config{Detector: det, Alpha: 0.5, Classifier: lh})
	if err != nil {
		log.Fatal(err)
	}

	var prev core.ElephantSet
	for msg := range feed {
		res, err := pipe.Step(msg.flows)
		if err != nil {
			log.Fatal(err)
		}
		promoted, demoted := diff(prev, res.Elephants)
		fmt.Printf("[%s] flows=%4d elephants=%3d load=%5.1f Mb/s eleph=%.2f",
			msg.at.Format("15:04"), res.ActiveFlows, res.ElephantCount(),
			res.TotalLoad/1e6, res.LoadFraction())
		if len(promoted) > 0 {
			fmt.Printf("  +%d promoted (e.g. %s)", len(promoted), promoted[0])
		}
		if len(demoted) > 0 {
			fmt.Printf("  -%d demoted (e.g. %s)", len(demoted), demoted[0])
		}
		fmt.Println()
		prev = res.Elephants
	}
}

// diff returns prefixes entering and leaving the elephant set, sorted
// for stable output.
func diff(prev, cur core.ElephantSet) (promoted, demoted []string) {
	for _, p := range cur.Flows() {
		if !prev.Contains(p) {
			promoted = append(promoted, p.String())
		}
	}
	for _, p := range prev.Flows() {
		if !cur.Contains(p) {
			demoted = append(demoted, p.String())
		}
	}
	sort.Strings(promoted)
	sort.Strings(demoted)
	return promoted, demoted
}
