// Live monitor: online elephant classification of a streaming feed.
//
// This example runs the repository's streaming ingestion stack end to
// end, the deployment shape the paper implies: a link's traffic arrives
// as a stream of prefix-attributable records (here from the synthetic
// generator's incremental mode; a real deployment would plug in
// agg.PacketRecordSource or netflow.RecordSource), a bounded-memory
// accumulator closes each measurement interval as time advances, and
// every closed interval is pushed straight into the classification
// pipeline. Nothing ever materialises the full trace: memory is
// bounded by the accumulator's window (here the latent-heat lookback,
// 12 five-minute slots), no matter how long the link is monitored.
//
// The monitor prints a rolling status line per interval, flagging
// promotions and demotions (the reroute events a TE controller would
// act on).
//
// Run with:
//
//	go run ./examples/livemonitor
//
// With -daemon the example becomes a client of a running elephantd
// instead: it fetches every link from the daemon's HTTP API and renders
// each link's /history as ASCII charts (load and elephant count over
// the retained intervals) plus the current elephant set — a terminal
// dashboard over the serving subsystem:
//
//	elephantd -gen-routes 600 -gen-seed 7 -udp 127.0.0.1:2055 -http 127.0.0.1:8055 &
//	nfreplay -addr 127.0.0.1:2055 -routes 600 -seed 7 -intervals 20
//	go run ./examples/livemonitor -daemon http://127.0.0.1:8055
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net/http"
	"net/url"
	"os"
	"sort"
	"strings"
	"time"

	"repro/internal/agg"
	"repro/internal/bgp"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/obs"
	"repro/internal/report"
	"repro/internal/scheme"
	"repro/internal/trace"
)

func main() {
	daemon := flag.String("daemon", "", "base URL of a running elephantd (e.g. http://127.0.0.1:8055); empty runs the in-process demo")
	flag.Parse()
	if *daemon != "" {
		if err := monitorDaemon(*daemon); err != nil {
			log.Fatal(err)
		}
		return
	}
	runLocal()
}

// linksPage, linkSummary, intervalSummary and elephantsPage mirror the
// daemon's JSON shapes (only the fields the dashboard renders).
type linksPage struct {
	Links     []linkSummary  `json:"links"`
	Pipelines []linkPipeline `json:"pipelines"`
}

type linkPipeline struct {
	Link         string   `json:"link"`
	Shards       int      `json:"shards"`
	ShardRecords []uint64 `json:"shard_records"`
	Stalls       uint64   `json:"stalls"`
}

type linkSummary struct {
	ID    string `json:"id"`
	Error string `json:"error"`
}

type intervalSummary struct {
	Interval     int     `json:"interval"`
	TotalLoadBps float64 `json:"total_load_bps"`
	Elephants    int     `json:"elephants"`
	LoadFraction float64 `json:"load_fraction"`
	Promoted     int     `json:"promoted"`
	Demoted      int     `json:"demoted"`
}

type historyPage struct {
	Entries []intervalSummary `json:"entries"`
}

type elephantsPage struct {
	Interval     int      `json:"interval"`
	ThresholdBps float64  `json:"threshold_bps"`
	Flows        []string `json:"flows"`
}

// monitorDaemon renders one dashboard pass over a running elephantd.
func monitorDaemon(base string) error {
	var page linksPage
	if err := getJSON(base+"/links", &page); err != nil {
		return err
	}
	links := page.Links
	if len(links) == 0 {
		fmt.Println("daemon knows no links yet — point an exporter (e.g. cmd/nfreplay) at its UDP port")
		return nil
	}
	pipes := make(map[string]linkPipeline, len(page.Pipelines))
	for _, p := range page.Pipelines {
		pipes[p.Link] = p
	}
	for _, l := range links {
		if l.Error != "" {
			fmt.Printf("link %s: FAILED: %s\n\n", l.ID, l.Error)
			continue
		}
		var hist historyPage
		if err := getJSON(base+"/links/"+url.PathEscape(l.ID)+"/history", &hist); err != nil {
			return err
		}
		if len(hist.Entries) == 0 {
			fmt.Printf("link %s: no closed intervals yet\n\n", l.ID)
			continue
		}
		load := make([]float64, len(hist.Entries))
		count := make([]float64, len(hist.Entries))
		churn := make([]float64, len(hist.Entries))
		for i, e := range hist.Entries {
			load[i] = e.TotalLoadBps / 1e6
			count[i] = float64(e.Elephants)
			churn[i] = float64(e.Promoted + e.Demoted)
		}
		if err := report.Chart(os.Stdout, report.ChartConfig{
			Width: 64, Height: 10,
			Title:  fmt.Sprintf("link %s — last %d intervals", l.ID, len(hist.Entries)),
			XLabel: "interval",
		}, report.Series{Label: "load Mb/s", Values: load}); err != nil {
			return err
		}
		if err := report.Chart(os.Stdout, report.ChartConfig{
			Width: 64, Height: 8,
			XLabel: "interval",
		}, report.Series{Label: "elephants", Values: count}); err != nil {
			return err
		}
		fmt.Printf("churn (promoted+demoted): %s\n", report.Sparkline(churn))

		var cur elephantsPage
		if err := getJSON(base+"/links/"+url.PathEscape(l.ID)+"/elephants", &cur); err != nil {
			return err
		}
		fmt.Printf("current elephants (interval %d, θ̂ = %.3f Mb/s): %d flows\n",
			cur.Interval, cur.ThresholdBps/1e6, len(cur.Flows))
		for i, f := range cur.Flows {
			if i == 10 {
				fmt.Printf("  … %d more\n", len(cur.Flows)-10)
				break
			}
			fmt.Printf("  %s\n", f)
		}

		// The flight recorder adds the operational view the summaries
		// lack: per-interval stage timings, the watermark lag each
		// interval was sealed under, and how much of each classify ran
		// overlapped with accumulation. Links known only from a previous
		// run have no live recorder; skip quietly then.
		if traces, err := getTraces(base + "/links/" + url.PathEscape(l.ID) + "/debug/intervals"); err == nil && len(traces) > 0 {
			stepUs := make([]float64, len(traces))
			lagS := make([]float64, len(traces))
			overlapUs := make([]float64, len(traces))
			for i, tr := range traces {
				stepUs[i] = float64(tr.StepNanos) / 1e3
				lagS[i] = float64(tr.WatermarkLagNanos) / 1e9
				overlapUs[i] = float64(tr.StageOverlapNanos) / 1e3
			}
			last := traces[len(traces)-1]
			fmt.Printf("flight recorder (%d traces): step µs %s  watermark lag s %s\n",
				len(traces), report.Sparkline(stepUs), report.Sparkline(lagS))
			fmt.Printf("  stage overlap µs %s (classify time spent alongside accumulation)\n",
				report.Sparkline(overlapUs))
			fmt.Printf("  last seal: step %.0f µs (detect %.0f, classify %.0f), lag %.1fs, churn +%d/-%d\n",
				float64(last.StepNanos)/1e3, float64(last.DetectNanos)/1e3,
				float64(last.ClassifyNanos)/1e3, float64(last.WatermarkLagNanos)/1e9,
				last.Promoted, last.Demoted)
		}
		// The pipeline row shows where the link's in-window records landed
		// across its accumulation shards and whether ingest ever stalled
		// on a full queue.
		if p, ok := pipes[l.ID]; ok && p.Shards > 0 {
			counts := make([]float64, len(p.ShardRecords))
			var total uint64
			for i, n := range p.ShardRecords {
				counts[i] = float64(n)
				total += n
			}
			fmt.Printf("shards (%d): records %s (%d in window), stalls %d\n",
				p.Shards, report.Sparkline(counts), total, p.Stalls)
		}
		fmt.Println()
	}
	return nil
}

// getTraces fetches and decodes a link's flight-recorder JSONL.
func getTraces(url string) ([]obs.IntervalTrace, error) {
	resp, err := http.Get(url)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("GET %s: %s", url, resp.Status)
	}
	var traces []obs.IntervalTrace
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<16), 1<<22)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		var tr obs.IntervalTrace
		if err := json.Unmarshal([]byte(line), &tr); err != nil {
			return nil, err
		}
		traces = append(traces, tr)
	}
	return traces, sc.Err()
}

func getJSON(url string, v any) error {
	resp, err := http.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("GET %s: %s", url, resp.Status)
	}
	return json.NewDecoder(resp.Body).Decode(v)
}

func runLocal() {
	table, err := bgp.Generate(bgp.GenConfig{Routes: 4000, Seed: 11})
	if err != nil {
		log.Fatal(err)
	}
	link, err := trace.NewLink(trace.LinkConfig{
		Name:        "live",
		Profile:     trace.WestCoastProfile(),
		MeanLoadBps: 80e6,
		Flows:       1200,
		Table:       table,
		Seed:        11,
	})
	if err != nil {
		log.Fatal(err)
	}

	const intervals = 36 // 3 hours of 5-minute slots
	start := time.Date(2001, time.July, 24, 9, 0, 0, 0, time.UTC)
	// The feed: records one interval at a time, generated on demand —
	// the link's full bandwidth matrix never exists.
	feed := link.Stream(start, 5*time.Minute, intervals)

	// The scheme comes from the registry: the paper's constant-load
	// detector plus latent heat. Swapping in any other registered spec
	// ("aest+latent", "spacesaving:k=100", ...) changes nothing below.
	sp := scheme.MustParse("load+latent")
	cfg, err := sp.Config()
	if err != nil {
		log.Fatal(err)
	}
	// The same instrumentation the daemon attaches per link works on a
	// local pipeline: the metrics bundle observes every step (stage
	// histograms, churn counters) and the flight recorder keeps the last
	// traces — both allocation-free on the hot path.
	om := obs.NewLinkMetrics(obs.NewRegistry(), "live@0", 1, obs.DefaultStageBounds())
	cfg.Observer = om
	fr := obs.NewFlightRecorder(intervals)
	pipe, err := core.NewPipeline(cfg)
	if err != nil {
		log.Fatal(err)
	}

	// The accumulator windows the record stream into intervals and
	// pushes each closed interval into the pipeline. Its window is
	// derived from the scheme (the latent-heat lookback, floored at
	// agg.DefaultStreamWindow), so ingestion holds no more history than
	// classification needs — the same rule cmd/elephants -stream uses.
	// Sharing the pipeline's flow table makes emitted snapshots carry
	// dense flow IDs the classifier indexes directly (omitting it also
	// works — the pipeline re-interns — but then every flow pays a hash
	// per interval).
	acc, err := agg.NewStreamAccumulator(agg.StreamConfig{
		Start:    start,
		Interval: 5 * time.Minute,
		Window:   engine.StreamWindow(sp, 0),
		Table:    pipe.Table(),
	})
	if err != nil {
		log.Fatal(err)
	}
	var prev core.ElephantSet
	acc.Emit = func(t int, snap *core.FlowSnapshot) error {
		res, err := pipe.StepSnapshot(t, snap)
		if err != nil {
			return err
		}
		o := om.Last()
		fr.Record(obs.IntervalTrace{
			Interval:          t,
			SealedUnixNanos:   time.Now().UnixNano(),
			DetectNanos:       o.DetectNanos,
			ClassifyNanos:     o.ClassifyNanos,
			FinalizeNanos:     o.FinalizeNanos,
			StepNanos:         o.StepNanos,
			RawThreshold:      o.RawThreshold,
			Threshold:         o.Threshold,
			TotalLoad:         o.TotalLoad,
			ElephantLoad:      o.ElephantLoad,
			ActiveFlows:       o.ActiveFlows,
			Elephants:         o.Elephants,
			Promoted:          o.Promoted,
			Demoted:           o.Demoted,
			WatermarkLagNanos: int64(acc.WatermarkLag()),
		})
		promoted, demoted := diff(prev, res.Elephants)
		fmt.Printf("[%s] flows=%4d elephants=%3d load=%5.1f Mb/s eleph=%.2f",
			acc.IntervalTime(t).Format("15:04"), res.ActiveFlows, res.ElephantCount(),
			res.TotalLoad/1e6, res.LoadFraction())
		if len(promoted) > 0 {
			fmt.Printf("  +%d promoted (e.g. %s)", len(promoted), promoted[0])
		}
		if len(demoted) > 0 {
			fmt.Printf("  -%d demoted (e.g. %s)", len(demoted), demoted[0])
		}
		fmt.Println()
		prev = res.Elephants
		return nil
	}

	if err := agg.Stream(feed, acc); err != nil {
		log.Fatal(err)
	}

	// The instrumented run leaves an operational digest behind: stage
	// timings from the histograms, churn totals from the counters, and
	// the per-interval step times from the flight recorder.
	if n := om.Step.Count(); n > 0 {
		stepUs := make([]float64, 0, fr.Len())
		for _, tr := range fr.Snapshot() {
			stepUs = append(stepUs, float64(tr.StepNanos)/1e3)
		}
		fmt.Printf("\nstage timings over %d intervals: step mean %.0f µs (detect %.0f, classify %.0f); churn +%d/-%d\n",
			n, om.Step.Sum()/float64(n)*1e6, om.Detect.Sum()/float64(n)*1e6,
			om.Classify.Sum()/float64(n)*1e6, om.Promoted.Value(), om.Demoted.Value())
		fmt.Printf("step µs per interval: %s\n", report.Sparkline(stepUs))
	}
}

// diff returns prefixes entering and leaving the elephant set, sorted
// for stable output.
func diff(prev, cur core.ElephantSet) (promoted, demoted []string) {
	for _, p := range cur.Flows() {
		if !prev.Contains(p) {
			promoted = append(promoted, p.String())
		}
	}
	for _, p := range prev.Flows() {
		if !cur.Contains(p) {
			demoted = append(demoted, p.String())
		}
	}
	sort.Strings(promoted)
	sort.Strings(demoted)
	return promoted, demoted
}
