// Live monitor: online elephant classification of a streaming feed.
//
// This example runs the repository's streaming ingestion stack end to
// end, the deployment shape the paper implies: a link's traffic arrives
// as a stream of prefix-attributable records (here from the synthetic
// generator's incremental mode; a real deployment would plug in
// agg.PacketRecordSource or netflow.RecordSource), a bounded-memory
// accumulator closes each measurement interval as time advances, and
// every closed interval is pushed straight into the classification
// pipeline. Nothing ever materialises the full trace: memory is
// bounded by the accumulator's window (here the latent-heat lookback,
// 12 five-minute slots), no matter how long the link is monitored.
//
// The monitor prints a rolling status line per interval, flagging
// promotions and demotions (the reroute events a TE controller would
// act on).
//
// Run with:
//
//	go run ./examples/livemonitor
package main

import (
	"fmt"
	"log"
	"sort"
	"time"

	"repro/internal/agg"
	"repro/internal/bgp"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/scheme"
	"repro/internal/trace"
)

func main() {
	table, err := bgp.Generate(bgp.GenConfig{Routes: 4000, Seed: 11})
	if err != nil {
		log.Fatal(err)
	}
	link, err := trace.NewLink(trace.LinkConfig{
		Name:        "live",
		Profile:     trace.WestCoastProfile(),
		MeanLoadBps: 80e6,
		Flows:       1200,
		Table:       table,
		Seed:        11,
	})
	if err != nil {
		log.Fatal(err)
	}

	const intervals = 36 // 3 hours of 5-minute slots
	start := time.Date(2001, time.July, 24, 9, 0, 0, 0, time.UTC)
	// The feed: records one interval at a time, generated on demand —
	// the link's full bandwidth matrix never exists.
	feed := link.Stream(start, 5*time.Minute, intervals)

	// The scheme comes from the registry: the paper's constant-load
	// detector plus latent heat. Swapping in any other registered spec
	// ("aest+latent", "spacesaving:k=100", ...) changes nothing below.
	sp := scheme.MustParse("load+latent")
	cfg, err := sp.Config()
	if err != nil {
		log.Fatal(err)
	}
	pipe, err := core.NewPipeline(cfg)
	if err != nil {
		log.Fatal(err)
	}

	// The accumulator windows the record stream into intervals and
	// pushes each closed interval into the pipeline. Its window is
	// derived from the scheme (the latent-heat lookback, floored at
	// agg.DefaultStreamWindow), so ingestion holds no more history than
	// classification needs — the same rule cmd/elephants -stream uses.
	acc, err := agg.NewStreamAccumulator(agg.StreamConfig{
		Start:    start,
		Interval: 5 * time.Minute,
		Window:   engine.StreamWindow(sp, 0),
	})
	if err != nil {
		log.Fatal(err)
	}
	var prev core.ElephantSet
	acc.Emit = func(t int, snap *core.FlowSnapshot) error {
		res, err := pipe.StepSnapshot(t, snap)
		if err != nil {
			return err
		}
		promoted, demoted := diff(prev, res.Elephants)
		fmt.Printf("[%s] flows=%4d elephants=%3d load=%5.1f Mb/s eleph=%.2f",
			acc.IntervalTime(t).Format("15:04"), res.ActiveFlows, res.ElephantCount(),
			res.TotalLoad/1e6, res.LoadFraction())
		if len(promoted) > 0 {
			fmt.Printf("  +%d promoted (e.g. %s)", len(promoted), promoted[0])
		}
		if len(demoted) > 0 {
			fmt.Printf("  -%d demoted (e.g. %s)", len(demoted), demoted[0])
		}
		fmt.Println()
		prev = res.Elephants
		return nil
	}

	if err := agg.Stream(feed, acc); err != nil {
		log.Fatal(err)
	}
}

// diff returns prefixes entering and leaving the elephant set, sorted
// for stable output.
func diff(prev, cur core.ElephantSet) (promoted, demoted []string) {
	for _, p := range cur.Flows() {
		if !prev.Contains(p) {
			promoted = append(promoted, p.String())
		}
	}
	for _, p := range prev.Flows() {
		if !cur.Contains(p) {
			demoted = append(demoted, p.String())
		}
	}
	sort.Strings(promoted)
	sort.Strings(demoted)
	return promoted, demoted
}
