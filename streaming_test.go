package repro

// The batch-vs-stream equivalence contract, end to end on every ingest
// substrate: classifications produced by the streaming path
// (RecordSource -> StreamAccumulator -> Pipeline.StepSnapshot, driven
// through engine.RunStreamLink) must be byte-identical to the batch
// path (the same records collected into an agg.Series, classified
// index-driven through engine.RunLink). Run with -race: the multi-link
// variants exercise the concurrent pool.

import (
	"bytes"
	"reflect"
	"testing"
	"time"

	"repro/internal/agg"
	"repro/internal/bgp"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/netflow"
	"repro/internal/trace"
)

var eqStart = time.Date(2001, time.July, 24, 9, 0, 0, 0, time.UTC)

// eqScheme is the paper scheme (constant load + latent heat) with fresh
// state per call, as the engine requires.
func eqScheme() (core.Config, error) {
	det, err := core.NewConstantLoadDetector(0.8)
	if err != nil {
		return core.Config{}, err
	}
	lh, err := core.NewLatentHeatClassifier(4)
	if err != nil {
		return core.Config{}, err
	}
	return core.Config{Detector: det, Alpha: 0.5, Classifier: lh, MinFlows: 8}, nil
}

// runBatchRecords collects a record source into a series and classifies
// it index-driven — the batch reference.
func runBatchRecords(t *testing.T, src agg.RecordSource, intervals int, interval time.Duration) []core.Result {
	t.Helper()
	s := agg.NewSeries(eqStart, interval, intervals)
	if _, err := agg.Collect(src, s); err != nil {
		t.Fatal(err)
	}
	lr := engine.RunLink(engine.Link{ID: "batch", Series: s, Config: eqScheme})
	if lr.Err != nil {
		t.Fatal(lr.Err)
	}
	return lr.Results
}

// runStreamRecords classifies a record source live through the
// bounded-memory streaming path.
func runStreamRecords(t *testing.T, src agg.RecordSource, interval time.Duration, window int) []core.Result {
	t.Helper()
	lr := engine.RunStreamLink(engine.StreamLink{
		ID: "stream", Source: src, Start: eqStart, Interval: interval, Window: window, Config: eqScheme,
	})
	if lr.Err != nil {
		t.Fatal(lr.Err)
	}
	return lr.Results
}

func requireIdentical(t *testing.T, substrate string, batch, stream []core.Result) {
	t.Helper()
	if len(stream) != len(batch) {
		t.Fatalf("%s: %d streamed intervals vs %d batch", substrate, len(stream), len(batch))
	}
	for i := range batch {
		if !reflect.DeepEqual(batch[i], stream[i]) {
			t.Fatalf("%s: interval %d diverges:\nbatch:  %+v\nstream: %+v", substrate, i, batch[i], stream[i])
		}
	}
}

// emitCapture synthesises a link and emits its traffic as a pcap
// capture.
func emitCapture(t *testing.T, table *bgp.Table, intervals int, interval time.Duration) []byte {
	t.Helper()
	link, err := trace.NewLink(trace.LinkConfig{
		Table: table, Flows: 300, MeanLoadBps: 2e6, Seed: 50,
		Profile: trace.FlatProfile(),
	})
	if err != nil {
		t.Fatal(err)
	}
	series := link.GenerateSeries(eqStart, interval, intervals)
	var buf bytes.Buffer
	if _, err := trace.NewPacketEmitter(51).Emit(&buf, series); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestStreamEquivalencePcap: packet ingestion, batch vs stream.
func TestStreamEquivalencePcap(t *testing.T) {
	table, err := bgp.Generate(bgp.GenConfig{Routes: 1200, Seed: 50})
	if err != nil {
		t.Fatal(err)
	}
	const intervals = 8
	interval := time.Minute
	capture := emitCapture(t, table, intervals, interval)

	mkSource := func() agg.RecordSource {
		src, err := agg.NewPacketRecordSource(bytes.NewReader(capture), table)
		if err != nil {
			t.Fatal(err)
		}
		return src
	}
	batch := runBatchRecords(t, mkSource(), intervals, interval)
	stream := runStreamRecords(t, mkSource(), interval, 3)
	requireIdentical(t, "pcap", batch, stream)
}

// TestStreamEquivalenceNetFlow: flow-record ingestion, batch vs stream.
// The records come out of a real flow cache (active/inactive timeouts)
// and reach back in time, so the accumulator window must cover the
// export lag.
func TestStreamEquivalenceNetFlow(t *testing.T) {
	table, err := bgp.Generate(bgp.GenConfig{Routes: 1200, Seed: 50})
	if err != nil {
		t.Fatal(err)
	}
	const intervals = 6
	interval := time.Minute
	capture := emitCapture(t, table, intervals, interval)

	var framed bytes.Buffer
	sw := netflow.NewStreamWriter(&framed)
	exp := netflow.NewExporter(netflow.ExporterConfig{
		ActiveTimeout: 30 * time.Second, InactiveTimeout: 10 * time.Second,
	}, sw.Write)
	psrc, err := agg.NewPcapPacketSource(bytes.NewReader(capture))
	if err != nil {
		t.Fatal(err)
	}
	for {
		ts, sum, err := psrc.Next()
		if err != nil {
			break
		}
		if err := exp.AddPacket(ts, sum); err != nil {
			t.Fatal(err)
		}
	}
	if err := exp.Flush(); err != nil {
		t.Fatal(err)
	}

	mkSource := func() agg.RecordSource {
		return netflow.NewRecordSource(netflow.NewStreamReader(bytes.NewReader(framed.Bytes())), table)
	}
	batch := runBatchRecords(t, mkSource(), intervals, interval)
	stream := runStreamRecords(t, mkSource(), interval, 8)
	requireIdentical(t, "netflow", batch, stream)
}

// TestStreamEquivalenceSynthetic: the generator's incremental mode,
// batch vs stream, including the full multi-link engine on both sides.
func TestStreamEquivalenceSynthetic(t *testing.T) {
	table, err := bgp.Generate(bgp.GenConfig{Routes: 1500, Seed: 52})
	if err != nil {
		t.Fatal(err)
	}
	const intervals = 16
	interval := 5 * time.Minute
	mkSource := func(seed int64) agg.RecordSource {
		link, err := trace.NewLink(trace.LinkConfig{
			Table: table, Flows: 400, MeanLoadBps: 5e6, Seed: seed,
			Profile: trace.WestCoastProfile(),
		})
		if err != nil {
			t.Fatal(err)
		}
		return link.Stream(eqStart, interval, intervals)
	}

	seeds := []int64{52, 53, 54}
	batchLinks := make([]engine.Link, len(seeds))
	streamLinks := make([]engine.StreamLink, len(seeds))
	for i, seed := range seeds {
		s := agg.NewSeries(eqStart, interval, intervals)
		if _, err := agg.Collect(mkSource(seed), s); err != nil {
			t.Fatal(err)
		}
		batchLinks[i] = engine.Link{ID: string(rune('a' + i)), Series: s, Config: eqScheme}
		streamLinks[i] = engine.StreamLink{
			ID: string(rune('a' + i)), Source: mkSource(seed),
			Start: eqStart, Interval: interval, Window: 4, Config: eqScheme,
		}
	}
	eng := engine.MultiLinkEngine{Workers: 3}
	want, err := eng.Run(batchLinks)
	if err != nil {
		t.Fatal(err)
	}
	got, err := eng.RunStreaming(streamLinks)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if want[i].Err != nil || got[i].Err != nil {
			t.Fatalf("link %s: errs %v / %v", want[i].ID, want[i].Err, got[i].Err)
		}
		requireIdentical(t, "synthetic/"+want[i].ID, want[i].Results, got[i].Results)
	}
}
