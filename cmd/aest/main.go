// Command aest runs the Crovella–Taqqu scaling estimator on a column of
// numbers (one per line, stdin or a file) and reports whether a
// power-law tail is detected, the tail onset (the paper's threshold),
// and the estimated tail index.
//
// Usage:
//
//	aest [-levels 5] [-hill] [file]
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"repro/internal/stats"
)

func main() {
	var (
		levels = flag.Int("levels", 0, "number of dyadic aggregation levels beyond the base (0 = default 3: m=2,4,8)")
		hill   = flag.Bool("hill", false, "also print the Hill estimate over the detected tail")
	)
	flag.Parse()

	var in io.Reader = os.Stdin
	if flag.NArg() > 0 {
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			fmt.Fprintln(os.Stderr, "aest:", err)
			os.Exit(1)
		}
		defer f.Close()
		in = f
	}
	xs, err := readColumn(in)
	if err != nil {
		fmt.Fprintln(os.Stderr, "aest:", err)
		os.Exit(1)
	}
	if len(xs) == 0 {
		fmt.Fprintln(os.Stderr, "aest: no samples")
		os.Exit(1)
	}

	cfg := stats.AestConfig{}
	if *levels > 0 {
		ms := make([]int, *levels)
		for i := range ms {
			ms[i] = 1 << (i + 1) // m = 2, 4, 8, ...
		}
		cfg.AggregationLevels = ms
	}
	res := stats.Aest(xs, cfg)
	fmt.Printf("samples:    %d\n", len(xs))
	fmt.Printf("tail found: %v\n", res.TailFound)
	if res.TailFound {
		fmt.Printf("tail onset: %g\n", res.TailOnset)
		fmt.Printf("alpha:      %.3f\n", res.Alpha)
		fmt.Printf("tail mass:  %.4f of samples\n", res.TailFraction)
		if *hill {
			var tail []float64
			for _, x := range xs {
				if x >= res.TailOnset {
					tail = append(tail, x)
				}
			}
			k := len(tail) - 1
			if k > 0 {
				if h, err := stats.Hill(xs, k); err == nil {
					fmt.Printf("hill(k=%d):  %.3f\n", k, h)
				}
			}
		}
	}
}

func readColumn(r io.Reader) ([]float64, error) {
	var xs []float64
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	line := 0
	for sc.Scan() {
		line++
		s := strings.TrimSpace(sc.Text())
		if s == "" || strings.HasPrefix(s, "#") {
			continue
		}
		v, err := strconv.ParseFloat(s, 64)
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", line, err)
		}
		xs = append(xs, v)
	}
	return xs, sc.Err()
}
