//go:build unix

package main

import (
	"context"
	"log"
	"os"
	"os/signal"
	"syscall"

	"repro/internal/serve"
)

// notifyFlightDump wires SIGUSR1 to the flight-recorder dump: each
// signal writes every link's retained interval traces to stderr (the
// log destination), header lines and JSONL, without disturbing ingest
// or the HTTP API. The watcher exits with ctx.
func notifyFlightDump(ctx context.Context, d *serve.Daemon) {
	ch := make(chan os.Signal, 1)
	signal.Notify(ch, syscall.SIGUSR1)
	go func() {
		defer signal.Stop(ch)
		for {
			select {
			case <-ctx.Done():
				return
			case <-ch:
				log.Printf("SIGUSR1: dumping flight recorders")
				if err := d.DumpFlightRecorders(os.Stderr); err != nil {
					log.Printf("flight-recorder dump: %v", err)
				}
			}
		}
	}()
}
