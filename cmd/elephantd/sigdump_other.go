//go:build !unix

package main

import (
	"context"

	"repro/internal/serve"
)

// notifyFlightDump is a no-op off Unix: SIGUSR1 does not exist there.
// The flight recorders stay reachable via /links/{id}/debug/intervals.
func notifyFlightDump(context.Context, *serve.Daemon) {}
