// Command elephantd is the live monitoring daemon: it listens for
// NetFlow v5 datagrams over UDP, demultiplexes them into per-link
// classification pipelines (exporter source address @ engine ID names
// a link), and serves the current elephant sets, recent history and
// Prometheus metrics over HTTP — the paper's classification running
// resident at a POP instead of over a finite trace.
//
// HTTP API:
//
//	GET /healthz                liveness + daemon-wide ingest counters
//	                            + per-link staleness and readiness
//	GET /readyz                 readiness probe: 503 once every link
//	                            has gone -stale-after without sealing
//	                            an interval
//	GET /links                  every known link, summarised
//	GET /links/{id}/elephants   the link's current elephant set
//	GET /links/{id}/history     recent interval summaries
//	                            (?n=COUNT limits, ?flows=1 adds sets)
//	GET /links/{id}/debug/intervals
//	                            the link's flight recorder: the last
//	                            -flight sealed intervals' stage timings,
//	                            thresholds, churn and watermark lag, as
//	                            JSONL
//	GET /metrics                Prometheus text exposition, including
//	                            per-link stage-latency histograms, churn
//	                            counters and the watermark-lag gauge
//	GET /debug/pprof/...        runtime profiles (only with -pprof)
//
// On SIGUSR1 (Unix only) the daemon dumps every link's flight recorder
// to the log writer — post-hoc interval traces without touching the
// HTTP API.
//
// Flags:
//
//	-udp addr       NetFlow v5 listen address (default ":2055")
//	-readers N      UDP ingest reader goroutines (default min(GOMAXPROCS, 8));
//	                each reader owns a SO_REUSEPORT socket where the
//	                platform supports it (the kernel then hashes each
//	                exporter to a fixed reader, preserving per-link
//	                record order), otherwise all readers share one socket
//	-http addr      HTTP API listen address (default ":8055")
//	-table path     BGP table file attributing records to prefixes;
//	                mutually exclusive with -gen-routes
//	-gen-routes N   synthesize an N-route table instead of -table
//	                (demo/smoke mode; pair with cmd/nfreplay -routes N
//	                -seed S so both sides share the table)
//	-gen-seed S     seed for -gen-routes (default 1)
//	-scheme SPEC    classification scheme from the registry
//	                (default "load+latent"; see -scheme help)
//	-alpha A        EWMA weight on the previous smoothed threshold
//	-interval D     measurement interval Δ (default 5m)
//	-window N       open-interval window override; 0 derives it from
//	                the scheme's latent-heat lookback
//	-history N      per-link interval-summary ring (default 288 —
//	                a day of five-minute slots)
//	-buffer N       per-link record queue capacity
//	-shards N       per-link accumulation shards (default
//	                min(GOMAXPROCS, 4)): N worker goroutines split each
//	                link's flow columns and a k-way merge reassembles
//	                sealed intervals bit-identically, so one hot link
//	                scales across cores; 1 keeps the serial path
//	-stale-after D  link staleness threshold for /readyz (default 3×Δ)
//	-flight N       per-link flight-recorder capacity (default 256)
//	-pprof          serve net/http/pprof under /debug/pprof/ (off by
//	                default: the profiling surface is a debugging aid,
//	                not part of the query API)
//	-grace D        shutdown grace period on SIGINT/SIGTERM (default 10s)
//
// Run a self-contained demo:
//
//	elephantd -gen-routes 600 -gen-seed 7 -udp 127.0.0.1:2055 -http 127.0.0.1:8055 &
//	nfreplay -addr 127.0.0.1:2055 -routes 600 -seed 7
//	curl -s http://127.0.0.1:8055/links
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/bgp"
	"repro/internal/scheme"
	"repro/internal/serve"
)

func main() {
	var (
		udpAddr    = flag.String("udp", ":2055", "NetFlow v5 listen address")
		readers    = flag.Int("readers", serve.DefaultReaders(), "UDP ingest reader goroutines (SO_REUSEPORT sharded where supported)")
		httpAddr   = flag.String("http", ":8055", "HTTP API listen address")
		tablePath  = flag.String("table", "", "BGP table path (or use -gen-routes)")
		genRoutes  = flag.Int("gen-routes", 0, "synthesize a BGP table with this many routes instead of -table")
		genSeed    = flag.Int64("gen-seed", 1, "seed for -gen-routes")
		schemeSpec = flag.String("scheme", "load+latent", scheme.FlagUsage())
		alpha      = flag.Float64("alpha", scheme.DefaultAlpha, "EWMA weight on the previous smoothed threshold")
		interval   = flag.Duration("interval", serve.DefaultInterval, "measurement interval")
		window     = flag.Int("window", 0, "open-interval window (memory bound); 0 derives it from the scheme")
		history    = flag.Int("history", serve.DefaultHistory, "per-link interval-summary ring capacity")
		buffer     = flag.Int("buffer", 0, "per-link record queue capacity; 0 selects the engine default")
		shards     = flag.Int("shards", serve.DefaultShards(), "per-link accumulation shards; 1 keeps the serial path")
		staleAfter = flag.Duration("stale-after", 0, "per-link staleness threshold for /readyz; 0 selects 3x the interval")
		flight     = flag.Int("flight", 0, "per-link flight-recorder capacity (sealed-interval traces retained for /links/{id}/debug/intervals and SIGUSR1 dumps); 0 selects 256")
		pprofFlag  = flag.Bool("pprof", false, "serve net/http/pprof profiles under /debug/pprof/ on the API listener (off by default)")
		grace      = flag.Duration("grace", 10*time.Second, "graceful shutdown window on SIGINT/SIGTERM")
	)
	flag.Parse()

	log.SetPrefix("elephantd: ")
	log.SetFlags(log.LstdFlags | log.Lmsgprefix)

	sp, err := scheme.ParseValidated(*schemeSpec)
	if err != nil {
		fmt.Fprintln(os.Stderr, "elephantd:", err)
		os.Exit(2)
	}
	sp.Alpha = *alpha

	table, err := loadTable(*tablePath, *genRoutes, *genSeed)
	if err != nil {
		fmt.Fprintln(os.Stderr, "elephantd:", err)
		os.Exit(2)
	}

	d, err := serve.NewDaemon(serve.Config{
		UDPAddr:        *udpAddr,
		HTTPAddr:       *httpAddr,
		Table:          table,
		Scheme:         sp,
		Readers:        *readers,
		Interval:       *interval,
		Window:         *window,
		History:        *history,
		Buffer:         *buffer,
		Shards:         *shards,
		StaleAfter:     *staleAfter,
		FlightRecorder: *flight,
		Pprof:          *pprofFlag,
		Logf:           log.Printf,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "elephantd:", err)
		os.Exit(1)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	notifyFlightDump(ctx, d)
	if err := d.Run(ctx, *grace); err != nil {
		fmt.Fprintln(os.Stderr, "elephantd:", err)
		os.Exit(1)
	}
}

func loadTable(path string, genRoutes int, genSeed int64) (*bgp.Table, error) {
	switch {
	case path != "" && genRoutes > 0:
		return nil, fmt.Errorf("-table and -gen-routes are mutually exclusive")
	case path != "":
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		table, err := bgp.ReadText(bufio.NewReader(f))
		if err != nil {
			return nil, fmt.Errorf("reading BGP table: %w", err)
		}
		return table, nil
	case genRoutes > 0:
		return bgp.Generate(bgp.GenConfig{Routes: genRoutes, Seed: genSeed})
	default:
		return nil, fmt.Errorf("a BGP table is required: -table PATH or -gen-routes N")
	}
}
