// Command elephants runs the paper's classification pipeline over a pcap
// capture and a BGP table: packets are decoded, attributed to BGP
// destination prefixes by longest-prefix match, aggregated into
// measurement intervals, and classified with the chosen threshold
// detection scheme, with or without the latent-heat persistence metric.
//
// Usage:
//
//	elephants -pcap trace.pcap -table table.txt [-scheme aest|load]
//	          [-beta 0.8] [-alpha 0.5] [-latent] [-window 12]
//	          [-interval 5m] [-top 10]
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"sort"
	"time"

	"repro/internal/agg"
	"repro/internal/analysis"
	"repro/internal/bgp"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/experiments"
	"repro/internal/pcap"
	"repro/internal/report"
)

func main() {
	var (
		pcapPath  = flag.String("pcap", "", "input pcap path (required)")
		tablePath = flag.String("table", "", "input BGP table path (required)")
		scheme    = flag.String("scheme", "load", "threshold scheme: aest or load")
		beta      = flag.Float64("beta", 0.8, "constant-load target fraction")
		alpha     = flag.Float64("alpha", 0.5, "EWMA weight")
		latent    = flag.Bool("latent", true, "enable the latent-heat (two-feature) classifier")
		window    = flag.Int("window", 12, "latent-heat window in intervals")
		interval  = flag.Duration("interval", 5*time.Minute, "measurement interval")
		top       = flag.Int("top", 10, "print the top-N elephant flows by volume")
	)
	flag.Parse()
	if *pcapPath == "" || *tablePath == "" {
		flag.Usage()
		os.Exit(2)
	}
	if err := run(*pcapPath, *tablePath, *scheme, *beta, *alpha, *latent, *window, *interval, *top); err != nil {
		fmt.Fprintln(os.Stderr, "elephants:", err)
		os.Exit(1)
	}
}

func run(pcapPath, tablePath, scheme string, beta, alpha float64, latent bool, window int, interval time.Duration, top int) error {
	tf, err := os.Open(tablePath)
	if err != nil {
		return err
	}
	table, err := bgp.ReadText(bufio.NewReader(tf))
	tf.Close()
	if err != nil {
		return fmt.Errorf("reading BGP table: %w", err)
	}

	// First pass over the capture header to size the series window.
	pf, err := os.Open(pcapPath)
	if err != nil {
		return err
	}
	defer pf.Close()
	span, start, err := captureSpan(pf)
	if err != nil {
		return fmt.Errorf("scanning capture: %w", err)
	}
	intervals := int(span/interval) + 1

	if _, err := pf.Seek(0, 0); err != nil {
		return err
	}
	series := agg.NewSeries(start, interval, intervals)
	frames, stats, err := agg.ReadPcap(bufio.NewReaderSize(pf, 1<<20), table, series)
	if err != nil {
		return fmt.Errorf("aggregating capture: %w", err)
	}
	fmt.Printf("capture: %d frames, %d routed, %d unrouted, %d flows, %d x %v intervals\n",
		frames, stats.Routed, stats.Unrouted, series.NumFlows(), intervals, interval)

	sc := experiments.SchemeConfig{
		UseAest:    scheme == "aest",
		Beta:       beta,
		Alpha:      alpha,
		LatentHeat: latent,
		Window:     window,
	}
	if scheme != "aest" && scheme != "load" {
		return fmt.Errorf("unknown scheme %q (want aest or load)", scheme)
	}
	// A single capture is a one-link engine run; feeding several links
	// (one pcap per monitored interface) classifies them concurrently.
	eng := engine.MultiLinkEngine{}
	lrs, err := eng.Run([]engine.Link{sc.Link(pcapPath, series)})
	if err != nil {
		return err
	}
	if lrs[0].Err != nil {
		return lrs[0].Err
	}
	results := lrs[0].Results

	fmt.Printf("scheme: %s\n\n", sc.Name())
	tab := report.NewTable("interval", "start", "active", "elephants", "load Mb/s", "eleph frac", "theta Mb/s")
	for i, r := range results {
		tab.AddRow(i, series.IntervalTime(i).Format("15:04"), r.ActiveFlows, r.ElephantCount(),
			fmt.Sprintf("%.1f", r.TotalLoad/1e6),
			fmt.Sprintf("%.3f", r.LoadFraction()),
			fmt.Sprintf("%.3f", r.Threshold/1e6))
	}
	fmt.Print(tab.String())

	counts := analysis.CountSeries(results)
	fracs := analysis.FractionSeries(results)
	fmt.Printf("\nmean elephants: %.1f   mean elephant load fraction: %.3f\n",
		analysis.MeanInt(counts), analysis.MeanFloat(fracs))

	if top > 0 {
		printTop(series, results, top)
	}
	return nil
}

// captureSpan reads just the per-packet headers to find the time window.
func captureSpan(f *os.File) (time.Duration, time.Time, error) {
	r, err := pcap.NewReader(bufio.NewReaderSize(f, 1<<20))
	if err != nil {
		return 0, time.Time{}, err
	}
	var first, last time.Time
	n := 0
	for {
		ci, _, err := r.ReadPacket()
		if err != nil {
			break
		}
		if n == 0 {
			first = ci.Timestamp
		}
		last = ci.Timestamp
		n++
	}
	if n == 0 {
		return 0, time.Time{}, fmt.Errorf("empty capture")
	}
	return last.Sub(first), first, nil
}

// printTop lists the flows most often classified as elephants.
func printTop(series *agg.Series, results []core.Result, top int) {
	counts := make(map[string]int)
	vols := make(map[string]float64)
	for _, r := range results {
		for _, p := range r.Elephants.Flows() {
			counts[p.String()]++
			vols[p.String()] += r.TotalLoad // approximation for ordering only
		}
	}
	type row struct {
		prefix string
		n      int
	}
	rows := make([]row, 0, len(counts))
	for p, n := range counts {
		rows = append(rows, row{p, n})
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].n != rows[j].n {
			return rows[i].n > rows[j].n
		}
		return rows[i].prefix < rows[j].prefix
	})
	if top > len(rows) {
		top = len(rows)
	}
	fmt.Printf("\ntop %d elephants by intervals in class:\n", top)
	tab := report.NewTable("prefix", "intervals as elephant")
	for _, r := range rows[:top] {
		tab.AddRow(r.prefix, r.n)
	}
	fmt.Print(tab.String())
}
