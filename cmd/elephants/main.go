// Command elephants runs the paper's classification pipeline over a pcap
// capture and a BGP table: packets are decoded, attributed to BGP
// destination prefixes by longest-prefix match, aggregated into
// measurement intervals, and classified under the scheme named by
// -scheme — any spec the registry knows, from the paper's
// "load:beta=0.8+latent:window=12" to the baseline sketches
// ("misragries:k=100"). Run with -scheme help (or any invalid spec) to
// see the registry listing.
//
// Two ingestion modes share the classification stack. The default batch
// mode prescans the capture to size a full flow×interval matrix, then
// classifies it on the multi-link engine. -stream classifies in a
// single pass instead: packets feed a bounded-memory interval
// accumulator that closes intervals as capture time advances and pushes
// each one straight into the pipeline — memory is governed by the
// accumulator window, not by capture length, and the resulting
// classifications are identical to batch mode on the same capture
// (interval 0 is anchored at the first frame in both modes; trailing
// intervals carrying only unrouted traffic appear, empty, in batch
// output only).
//
// The accumulator window follows the scheme: by default it is the
// scheme's latent-heat window (so ingestion holds exactly as much
// history as classification looks back on), floored at
// agg.DefaultStreamWindow for schemes without persistence.
// -stream-window overrides the derived value explicitly; there is no
// separate latent-window flag to keep in sync.
//
// Usage:
//
//	elephants -pcap trace.pcap -table table.txt [-scheme SPEC]
//	          [-alpha 0.5] [-interval 5m] [-top 10]
//	          [-stream] [-stream-window N]
package main

import (
	"bufio"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"time"

	"repro/internal/agg"
	"repro/internal/analysis"
	"repro/internal/bgp"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/pcap"
	"repro/internal/report"
	"repro/internal/scheme"
)

func main() {
	var (
		pcapPath   = flag.String("pcap", "", "input pcap path (required)")
		tablePath  = flag.String("table", "", "input BGP table path (required)")
		schemeSpec = flag.String("scheme", "load+latent", scheme.FlagUsage())
		alpha      = flag.Float64("alpha", scheme.DefaultAlpha, "EWMA weight on the previous smoothed threshold")
		interval   = flag.Duration("interval", 5*time.Minute, "measurement interval")
		top        = flag.Int("top", 10, "print the top-N elephant flows by volume")
		stream     = flag.Bool("stream", false, "single-pass streaming mode: bounded memory, no capture prescan")
		swindow    = flag.Int("stream-window", 0, "streaming mode: open-interval window (memory bound); 0 derives it from the scheme's latent-heat window, floored at agg.DefaultStreamWindow")
	)
	flag.Parse()
	if *pcapPath == "" || *tablePath == "" {
		flag.Usage()
		os.Exit(2)
	}
	// A parse error's text enumerates the registered schemes.
	sp, err := scheme.ParseValidated(*schemeSpec)
	if err != nil {
		fmt.Fprintln(os.Stderr, "elephants:", err)
		os.Exit(2)
	}
	if *swindow < 0 {
		fmt.Fprintf(os.Stderr, "elephants: -stream-window %d must be >= 0 (0 derives it from the scheme)\n", *swindow)
		os.Exit(2)
	}
	sp.Alpha = *alpha
	if *stream {
		err = runStream(*pcapPath, *tablePath, sp, *interval, engine.StreamWindow(sp, *swindow), *top)
	} else {
		err = runBatch(*pcapPath, *tablePath, sp, *interval, *top)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "elephants:", err)
		os.Exit(1)
	}
}

func readTable(path string) (*bgp.Table, error) {
	tf, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer tf.Close()
	table, err := bgp.ReadText(bufio.NewReader(tf))
	if err != nil {
		return nil, fmt.Errorf("reading BGP table: %w", err)
	}
	return table, nil
}

func runBatch(pcapPath, tablePath string, sp *scheme.Spec, interval time.Duration, top int) error {
	table, err := readTable(tablePath)
	if err != nil {
		return err
	}

	// First pass over the capture header to size the series window.
	pf, err := os.Open(pcapPath)
	if err != nil {
		return err
	}
	defer pf.Close()
	span, start, err := captureSpan(pf)
	if err != nil {
		return fmt.Errorf("scanning capture: %w", err)
	}
	intervals := int(span/interval) + 1

	if _, err := pf.Seek(0, 0); err != nil {
		return err
	}
	series := agg.NewSeries(start, interval, intervals)
	frames, stats, err := agg.ReadPcap(bufio.NewReaderSize(pf, 1<<20), table, series)
	if err != nil {
		return fmt.Errorf("aggregating capture: %w", err)
	}
	fmt.Printf("capture: %d frames, %d routed, %d unrouted, %d flows, %d x %v intervals\n",
		frames, stats.Routed, stats.Unrouted, series.NumFlows(), intervals, interval)

	// A single capture is a one-link engine run; feeding several links
	// (one pcap per monitored interface) classifies them concurrently.
	eng := engine.MultiLinkEngine{}
	lrs, err := eng.Run([]engine.Link{{ID: pcapPath, Series: series, Config: sp.Factory()}})
	if err != nil {
		return err
	}
	if lrs[0].Err != nil {
		return lrs[0].Err
	}
	printReport(sp, lrs[0].Results, series.IntervalTime, top)
	return nil
}

// runStream classifies the capture in one pass: no prescan, no full
// matrix — records flow through a windowed accumulator into the
// pipeline as capture time closes each interval.
func runStream(pcapPath, tablePath string, sp *scheme.Spec, interval time.Duration, window, top int) error {
	table, err := readTable(tablePath)
	if err != nil {
		return err
	}
	pf, err := os.Open(pcapPath)
	if err != nil {
		return err
	}
	defer pf.Close()
	src, err := agg.NewPacketRecordSource(bufio.NewReaderSize(pf, 1<<20), table)
	if err != nil {
		return err
	}
	cfg, err := sp.Config()
	if err != nil {
		return err
	}
	pipe, err := core.NewPipeline(cfg)
	if err != nil {
		return err
	}
	// Pull the first routed record before sizing the accumulator: its
	// interval 0 is anchored at the first frame's timestamp (known once
	// any frame has been read), matching the batch prescan's anchor even
	// when the capture opens with unrouted traffic.
	first, err := src.Next()
	if errors.Is(err, io.EOF) {
		return fmt.Errorf("no routed packets in capture")
	}
	if err != nil {
		return fmt.Errorf("streaming capture: %w", err)
	}
	acc, err := agg.NewStreamAccumulator(agg.StreamConfig{
		Start:    src.FirstTimestamp(),
		Interval: interval,
		Window:   window,
	})
	if err != nil {
		return err
	}
	var results []core.Result
	acc.Emit = func(t int, snap *core.FlowSnapshot) error {
		res, err := pipe.StepSnapshot(t, snap)
		if err != nil {
			return err
		}
		results = append(results, res)
		return nil
	}
	if err := acc.Add(first); err != nil {
		return fmt.Errorf("streaming capture: %w", err)
	}
	if err := agg.Stream(src, acc); err != nil {
		return fmt.Errorf("streaming capture: %w", err)
	}
	st := acc.Stats()
	fmt.Printf("capture: %d frames, %d routed, %d unrouted, %d x %v intervals (streamed, window %d, %d late records)\n",
		src.ParserStats().Frames, src.Stats.Routed, src.Stats.Unrouted, st.Closed, interval, window, st.Late)
	printReport(sp, results, acc.IntervalTime, top)
	return nil
}

// printReport prints the per-interval table and summary shared by both
// ingestion modes.
func printReport(sp *scheme.Spec, results []core.Result, intervalTime func(int) time.Time, top int) {
	fmt.Printf("scheme: %s\n\n", sp.Name())
	tab := report.NewTable("interval", "start", "active", "elephants", "load Mb/s", "eleph frac", "theta Mb/s")
	for i, r := range results {
		tab.AddRow(i, intervalTime(i).Format("15:04"), r.ActiveFlows, r.ElephantCount(),
			fmt.Sprintf("%.1f", r.TotalLoad/1e6),
			fmt.Sprintf("%.3f", r.LoadFraction()),
			fmt.Sprintf("%.3f", r.Threshold/1e6))
	}
	fmt.Print(tab.String())

	counts := analysis.CountSeries(results)
	fracs := analysis.FractionSeries(results)
	fmt.Printf("\nmean elephants: %.1f   mean elephant load fraction: %.3f\n",
		analysis.MeanInt(counts), analysis.MeanFloat(fracs))

	if top > 0 {
		printTop(results, top)
	}
}

// captureSpan reads just the per-packet headers to find the time window.
func captureSpan(f *os.File) (time.Duration, time.Time, error) {
	r, err := pcap.NewReader(bufio.NewReaderSize(f, 1<<20))
	if err != nil {
		return 0, time.Time{}, err
	}
	var first, last time.Time
	n := 0
	for {
		ci, _, err := r.ReadPacket()
		if err != nil {
			break
		}
		if n == 0 {
			first = ci.Timestamp
		}
		last = ci.Timestamp
		n++
	}
	if n == 0 {
		return 0, time.Time{}, fmt.Errorf("empty capture")
	}
	return last.Sub(first), first, nil
}

// printTop lists the flows most often classified as elephants.
func printTop(results []core.Result, top int) {
	counts := make(map[string]int)
	for _, r := range results {
		for _, p := range r.Elephants.Flows() {
			counts[p.String()]++
		}
	}
	type row struct {
		prefix string
		n      int
	}
	rows := make([]row, 0, len(counts))
	for p, n := range counts {
		rows = append(rows, row{p, n})
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].n != rows[j].n {
			return rows[i].n > rows[j].n
		}
		return rows[i].prefix < rows[j].prefix
	})
	if top > len(rows) {
		top = len(rows)
	}
	fmt.Printf("\ntop %d elephants by intervals in class:\n", top)
	tab := report.NewTable("prefix", "intervals as elephant")
	for _, r := range rows[:top] {
		tab.AddRow(r.prefix, r.n)
	}
	fmt.Print(tab.String())
}
