// Command elephants runs the paper's classification pipeline over a pcap
// capture and a BGP table: packets are decoded, attributed to BGP
// destination prefixes by longest-prefix match, aggregated into
// measurement intervals, and classified with the chosen threshold
// detection scheme, with or without the latent-heat persistence metric.
//
// Two ingestion modes share the classification stack. The default batch
// mode prescans the capture to size a full flow×interval matrix, then
// classifies it on the multi-link engine. -stream classifies in a
// single pass instead: packets feed a bounded-memory interval
// accumulator that closes intervals as capture time advances and pushes
// each one straight into the pipeline — memory is governed by
// -stream-window intervals, not by capture length, and the resulting
// classifications are identical to batch mode on the same capture
// (interval 0 is anchored at the first frame in both modes; trailing
// intervals carrying only unrouted traffic appear, empty, in batch
// output only).
//
// Usage:
//
//	elephants -pcap trace.pcap -table table.txt [-scheme aest|load]
//	          [-beta 0.8] [-alpha 0.5] [-latent] [-window 12]
//	          [-interval 5m] [-top 10] [-stream] [-stream-window 12]
package main

import (
	"bufio"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"time"

	"repro/internal/agg"
	"repro/internal/analysis"
	"repro/internal/bgp"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/experiments"
	"repro/internal/pcap"
	"repro/internal/report"
)

func main() {
	var (
		pcapPath  = flag.String("pcap", "", "input pcap path (required)")
		tablePath = flag.String("table", "", "input BGP table path (required)")
		scheme    = flag.String("scheme", "load", "threshold scheme: aest or load")
		beta      = flag.Float64("beta", 0.8, "constant-load target fraction")
		alpha     = flag.Float64("alpha", 0.5, "EWMA weight")
		latent    = flag.Bool("latent", true, "enable the latent-heat (two-feature) classifier")
		window    = flag.Int("window", 12, "latent-heat window in intervals")
		interval  = flag.Duration("interval", 5*time.Minute, "measurement interval")
		top       = flag.Int("top", 10, "print the top-N elephant flows by volume")
		stream    = flag.Bool("stream", false, "single-pass streaming mode: bounded memory, no capture prescan")
		swindow   = flag.Int("stream-window", agg.DefaultStreamWindow, "streaming mode: open-interval window (memory bound)")
	)
	flag.Parse()
	if *pcapPath == "" || *tablePath == "" {
		flag.Usage()
		os.Exit(2)
	}
	if *scheme != "aest" && *scheme != "load" {
		fmt.Fprintf(os.Stderr, "elephants: unknown scheme %q (want aest or load)\n", *scheme)
		os.Exit(2)
	}
	sc := experiments.SchemeConfig{
		UseAest:    *scheme == "aest",
		Beta:       *beta,
		Alpha:      *alpha,
		LatentHeat: *latent,
		Window:     *window,
	}
	var err error
	if *stream {
		err = runStream(*pcapPath, *tablePath, sc, *interval, *swindow, *top)
	} else {
		err = runBatch(*pcapPath, *tablePath, sc, *interval, *top)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "elephants:", err)
		os.Exit(1)
	}
}

func readTable(path string) (*bgp.Table, error) {
	tf, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer tf.Close()
	table, err := bgp.ReadText(bufio.NewReader(tf))
	if err != nil {
		return nil, fmt.Errorf("reading BGP table: %w", err)
	}
	return table, nil
}

func runBatch(pcapPath, tablePath string, sc experiments.SchemeConfig, interval time.Duration, top int) error {
	table, err := readTable(tablePath)
	if err != nil {
		return err
	}

	// First pass over the capture header to size the series window.
	pf, err := os.Open(pcapPath)
	if err != nil {
		return err
	}
	defer pf.Close()
	span, start, err := captureSpan(pf)
	if err != nil {
		return fmt.Errorf("scanning capture: %w", err)
	}
	intervals := int(span/interval) + 1

	if _, err := pf.Seek(0, 0); err != nil {
		return err
	}
	series := agg.NewSeries(start, interval, intervals)
	frames, stats, err := agg.ReadPcap(bufio.NewReaderSize(pf, 1<<20), table, series)
	if err != nil {
		return fmt.Errorf("aggregating capture: %w", err)
	}
	fmt.Printf("capture: %d frames, %d routed, %d unrouted, %d flows, %d x %v intervals\n",
		frames, stats.Routed, stats.Unrouted, series.NumFlows(), intervals, interval)

	// A single capture is a one-link engine run; feeding several links
	// (one pcap per monitored interface) classifies them concurrently.
	eng := engine.MultiLinkEngine{}
	lrs, err := eng.Run([]engine.Link{sc.Link(pcapPath, series)})
	if err != nil {
		return err
	}
	if lrs[0].Err != nil {
		return lrs[0].Err
	}
	printReport(sc, lrs[0].Results, series.IntervalTime, top)
	return nil
}

// runStream classifies the capture in one pass: no prescan, no full
// matrix — records flow through a windowed accumulator into the
// pipeline as capture time closes each interval.
func runStream(pcapPath, tablePath string, sc experiments.SchemeConfig, interval time.Duration, window, top int) error {
	table, err := readTable(tablePath)
	if err != nil {
		return err
	}
	pf, err := os.Open(pcapPath)
	if err != nil {
		return err
	}
	defer pf.Close()
	src, err := agg.NewPacketRecordSource(bufio.NewReaderSize(pf, 1<<20), table)
	if err != nil {
		return err
	}
	cfg, err := sc.NewConfig()
	if err != nil {
		return err
	}
	pipe, err := core.NewPipeline(cfg)
	if err != nil {
		return err
	}
	// Pull the first routed record before sizing the accumulator: its
	// interval 0 is anchored at the first frame's timestamp (known once
	// any frame has been read), matching the batch prescan's anchor even
	// when the capture opens with unrouted traffic.
	first, err := src.Next()
	if errors.Is(err, io.EOF) {
		return fmt.Errorf("no routed packets in capture")
	}
	if err != nil {
		return fmt.Errorf("streaming capture: %w", err)
	}
	acc, err := agg.NewStreamAccumulator(agg.StreamConfig{
		Start:    src.FirstTimestamp(),
		Interval: interval,
		Window:   window,
	})
	if err != nil {
		return err
	}
	var results []core.Result
	acc.Emit = func(t int, snap *core.FlowSnapshot) error {
		res, err := pipe.StepSnapshot(t, snap)
		if err != nil {
			return err
		}
		results = append(results, res)
		return nil
	}
	if err := acc.Add(first); err != nil {
		return fmt.Errorf("streaming capture: %w", err)
	}
	if err := agg.Stream(src, acc); err != nil {
		return fmt.Errorf("streaming capture: %w", err)
	}
	st := acc.Stats()
	fmt.Printf("capture: %d frames, %d routed, %d unrouted, %d x %v intervals (streamed, window %d, %d late records)\n",
		src.ParserStats().Frames, src.Stats.Routed, src.Stats.Unrouted, st.Closed, interval, window, st.Late)
	printReport(sc, results, acc.IntervalTime, top)
	return nil
}

// printReport prints the per-interval table and summary shared by both
// ingestion modes.
func printReport(sc experiments.SchemeConfig, results []core.Result, intervalTime func(int) time.Time, top int) {
	fmt.Printf("scheme: %s\n\n", sc.Name())
	tab := report.NewTable("interval", "start", "active", "elephants", "load Mb/s", "eleph frac", "theta Mb/s")
	for i, r := range results {
		tab.AddRow(i, intervalTime(i).Format("15:04"), r.ActiveFlows, r.ElephantCount(),
			fmt.Sprintf("%.1f", r.TotalLoad/1e6),
			fmt.Sprintf("%.3f", r.LoadFraction()),
			fmt.Sprintf("%.3f", r.Threshold/1e6))
	}
	fmt.Print(tab.String())

	counts := analysis.CountSeries(results)
	fracs := analysis.FractionSeries(results)
	fmt.Printf("\nmean elephants: %.1f   mean elephant load fraction: %.3f\n",
		analysis.MeanInt(counts), analysis.MeanFloat(fracs))

	if top > 0 {
		printTop(results, top)
	}
}

// captureSpan reads just the per-packet headers to find the time window.
func captureSpan(f *os.File) (time.Duration, time.Time, error) {
	r, err := pcap.NewReader(bufio.NewReaderSize(f, 1<<20))
	if err != nil {
		return 0, time.Time{}, err
	}
	var first, last time.Time
	n := 0
	for {
		ci, _, err := r.ReadPacket()
		if err != nil {
			break
		}
		if n == 0 {
			first = ci.Timestamp
		}
		last = ci.Timestamp
		n++
	}
	if n == 0 {
		return 0, time.Time{}, fmt.Errorf("empty capture")
	}
	return last.Sub(first), first, nil
}

// printTop lists the flows most often classified as elephants.
func printTop(results []core.Result, top int) {
	counts := make(map[string]int)
	for _, r := range results {
		for _, p := range r.Elephants.Flows() {
			counts[p.String()]++
		}
	}
	type row struct {
		prefix string
		n      int
	}
	rows := make([]row, 0, len(counts))
	for p, n := range counts {
		rows = append(rows, row{p, n})
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].n != rows[j].n {
			return rows[i].n > rows[j].n
		}
		return rows[i].prefix < rows[j].prefix
	})
	if top > len(rows) {
		top = len(rows)
	}
	fmt.Printf("\ntop %d elephants by intervals in class:\n", top)
	tab := report.NewTable("prefix", "intervals as elephant")
	for _, r := range rows[:top] {
		tab.AddRow(r.prefix, r.n)
	}
	fmt.Print(tab.String())
}
