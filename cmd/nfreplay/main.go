// Command nfreplay feeds a running elephantd (or any NetFlow v5
// collector) over UDP: it synthesizes a link's traffic, pushes the
// packets through the router-model flow cache (netflow.Exporter), and
// sends the resulting datagrams to the collector's socket — the
// loopback half of a self-contained live-monitoring demo, and the
// traffic source of the CI daemon smoke test.
//
// The BGP table is generated from (-routes, -seed); point the daemon at
// the same pair (elephantd -gen-routes N -gen-seed S) so both sides
// attribute records against an identical table.
//
// Flags:
//
//	-addr host:port   collector address (default "127.0.0.1:2055")
//	-routes N         synthetic BGP table size (default 600)
//	-seed S           table and traffic seed (default 7)
//	-flows N          concurrent flows on the link (default 200)
//	-intervals N      measurement intervals to synthesize (default 4)
//	-interval D       measurement interval length (default 30s)
//	-mean-bps B       mean offered load in bit/s (default 2e5)
//	-engine ID        NetFlow engine ID stamped on datagrams
//	-pace D           sleep between datagrams (default 1ms; 0 blasts)
package main

import (
	"bytes"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"time"

	"repro/internal/agg"
	"repro/internal/bgp"
	"repro/internal/netflow"
	"repro/internal/trace"
)

func main() {
	var (
		addr      = flag.String("addr", "127.0.0.1:2055", "collector UDP address")
		routes    = flag.Int("routes", 600, "synthetic BGP table size")
		seed      = flag.Int64("seed", 7, "table and traffic seed")
		flows     = flag.Int("flows", 200, "concurrent flows on the link")
		intervals = flag.Int("intervals", 4, "measurement intervals to synthesize")
		interval  = flag.Duration("interval", 30*time.Second, "measurement interval length")
		meanBps   = flag.Float64("mean-bps", 2e5, "mean offered load (bit/s)")
		engineID  = flag.Int("engine", 0, "NetFlow engine ID stamped on datagrams")
		pace      = flag.Duration("pace", time.Millisecond, "sleep between datagrams (0 blasts)")
	)
	flag.Parse()
	log.SetPrefix("nfreplay: ")
	log.SetFlags(0)

	if *engineID < 0 || *engineID > 255 {
		log.Fatalf("-engine %d outside 0..255", *engineID)
	}
	table, err := bgp.Generate(bgp.GenConfig{Routes: *routes, Seed: *seed})
	if err != nil {
		log.Fatal(err)
	}
	link, err := trace.NewLink(trace.LinkConfig{
		Name:        "replay",
		Profile:     trace.FlatProfile(),
		MeanLoadBps: *meanBps,
		Flows:       *flows,
		Table:       table,
		Seed:        *seed,
	})
	if err != nil {
		log.Fatal(err)
	}

	start := time.Date(2001, time.July, 24, 9, 0, 0, 0, time.UTC)
	series := link.GenerateSeries(start, *interval, *intervals)
	var capture bytes.Buffer
	if _, err := trace.NewPacketEmitter(*seed+1).Emit(&capture, series); err != nil {
		log.Fatal(err)
	}

	conn, err := net.Dial("udp", *addr)
	if err != nil {
		log.Fatal(err)
	}
	defer conn.Close()

	var datagrams, records, bytesOnWire int
	exporter := netflow.NewExporter(netflow.ExporterConfig{
		ActiveTimeout:   *interval,
		InactiveTimeout: *interval / 3,
		EngineID:        uint8(*engineID),
	}, func(dg *netflow.Datagram) error {
		wire, err := dg.Encode(nil)
		if err != nil {
			return err
		}
		if _, err := conn.Write(wire); err != nil {
			return err
		}
		datagrams++
		records += len(dg.Records)
		bytesOnWire += len(wire)
		if *pace > 0 {
			time.Sleep(*pace)
		}
		return nil
	})

	src, err := agg.NewPcapPacketSource(bytes.NewReader(capture.Bytes()))
	if err != nil {
		log.Fatal(err)
	}
	for {
		ts, sum, err := src.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			log.Fatal(err)
		}
		if err := exporter.AddPacket(ts, sum); err != nil {
			log.Fatal(err)
		}
	}
	if err := exporter.Flush(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("nfreplay: sent %d records in %d datagrams (%.1f KiB) to %s — %d intervals of %v, %d flows\n",
		records, datagrams, float64(bytesOnWire)/1024, *addr, *intervals, *interval, *flows)
}
