// Command nfreplay feeds a running elephantd (or any NetFlow v5
// collector) over UDP: it synthesizes a link's traffic, pushes the
// packets through the router-model flow cache (netflow.Exporter), and
// sends the resulting datagrams to the collector's socket — the
// loopback half of a self-contained live-monitoring demo, the traffic
// source of the CI daemon smoke test, and (with -senders/-pace 0) the
// blast source of the ingest saturation benchmark.
//
// The BGP table is generated from (-routes, -seed); point the daemon at
// the same pair (elephantd -gen-routes N -gen-seed S) so both sides
// attribute records against an identical table.
//
// The datagram set is synthesized and encoded once; each sender then
// replays it from its own UDP socket with a distinct NetFlow engine ID
// (-engine + sender index), so S senders appear to the collector as S
// independent links — S distinct REUSEPORT buckets and S pipelines.
// Repetitions re-stamp each datagram's export clock one trace-span
// later, so replayed records keep advancing in time instead of landing
// behind the collector's closed intervals as late drops.
//
// Flags:
//
//	-addr host:port   collector address (default "127.0.0.1:2055")
//	-routes N         synthetic BGP table size (default 600)
//	-seed S           table and traffic seed (default 7)
//	-flows N          concurrent flows on the link (default 200)
//	-intervals N      measurement intervals to synthesize (default 4)
//	-interval D       measurement interval length (default 30s)
//	-mean-bps B       mean offered load in bit/s (default 2e5)
//	-engine ID        NetFlow engine ID of the first sender
//	-senders N        parallel senders, distinct engine IDs (default 1)
//	-count N          replay the datagram set N times per sender (default 1)
//	-duration D       replay until D has elapsed (overrides -count)
//	-pace D           sleep between datagrams per sender (default 1ms; 0 blasts)
//	-single-link      all senders keep the first engine ID, so S sockets
//	                  blast ONE collector link — the intra-link
//	                  saturation shape (-shards sweeps) instead of the
//	                  S-links ingest shape
//
// On exit it prints the achieved aggregate rate (datagrams/s, records/s,
// Mbit/s), making saturation runs scriptable: blast with -senders 4
// -pace 0 -duration 10s and compare the daemon's /healthz datagram
// count against the sent total to find the drop point.
package main

import (
	"bytes"
	"encoding/binary"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"sync"
	"time"

	"repro/internal/agg"
	"repro/internal/bgp"
	"repro/internal/netflow"
	"repro/internal/trace"
)

func main() {
	var (
		addr      = flag.String("addr", "127.0.0.1:2055", "collector UDP address")
		routes    = flag.Int("routes", 600, "synthetic BGP table size")
		seed      = flag.Int64("seed", 7, "table and traffic seed")
		flows     = flag.Int("flows", 200, "concurrent flows on the link")
		intervals = flag.Int("intervals", 4, "measurement intervals to synthesize")
		interval  = flag.Duration("interval", 30*time.Second, "measurement interval length")
		meanBps   = flag.Float64("mean-bps", 2e5, "mean offered load (bit/s)")
		engineID  = flag.Int("engine", 0, "NetFlow engine ID of the first sender")
		senders   = flag.Int("senders", 1, "parallel senders, each a distinct engine ID (its own link)")
		count     = flag.Int("count", 1, "replay the datagram set this many times per sender")
		duration  = flag.Duration("duration", 0, "replay until this much time has elapsed (overrides -count)")
		pace      = flag.Duration("pace", time.Millisecond, "sleep between datagrams per sender (0 blasts)")
		single    = flag.Bool("single-link", false, "all senders share the first engine ID (one collector link, many sockets)")
	)
	flag.Parse()
	log.SetPrefix("nfreplay: ")
	log.SetFlags(0)

	if *senders < 1 {
		log.Fatalf("-senders %d, want >= 1", *senders)
	}
	idSpan := *senders
	if *single {
		idSpan = 1
	}
	if *engineID < 0 || *engineID+idSpan-1 > 255 {
		log.Fatalf("engine IDs %d..%d outside 0..255", *engineID, *engineID+idSpan-1)
	}
	if *count < 1 && *duration <= 0 {
		log.Fatalf("-count %d, want >= 1 (or a positive -duration)", *count)
	}
	table, err := bgp.Generate(bgp.GenConfig{Routes: *routes, Seed: *seed})
	if err != nil {
		log.Fatal(err)
	}
	link, err := trace.NewLink(trace.LinkConfig{
		Name:        "replay",
		Profile:     trace.FlatProfile(),
		MeanLoadBps: *meanBps,
		Flows:       *flows,
		Table:       table,
		Seed:        *seed,
	})
	if err != nil {
		log.Fatal(err)
	}

	start := time.Date(2001, time.July, 24, 9, 0, 0, 0, time.UTC)
	series := link.GenerateSeries(start, *interval, *intervals)
	var capture bytes.Buffer
	if _, err := trace.NewPacketEmitter(*seed+1).Emit(&capture, series); err != nil {
		log.Fatal(err)
	}

	// Synthesize and encode the datagram set once; every sender replays
	// copies of these wire bytes.
	var wires [][]byte
	exporter := netflow.NewExporter(netflow.ExporterConfig{
		ActiveTimeout:   *interval,
		InactiveTimeout: *interval / 3,
		EngineID:        uint8(*engineID),
	}, func(dg *netflow.Datagram) error {
		wire, err := dg.Encode(nil)
		if err != nil {
			return err
		}
		wires = append(wires, append([]byte(nil), wire...))
		return nil
	})
	src, err := agg.NewPcapPacketSource(bytes.NewReader(capture.Bytes()))
	if err != nil {
		log.Fatal(err)
	}
	for {
		ts, sum, err := src.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			log.Fatal(err)
		}
		if err := exporter.AddPacket(ts, sum); err != nil {
			log.Fatal(err)
		}
	}
	if err := exporter.Flush(); err != nil {
		log.Fatal(err)
	}
	if len(wires) == 0 {
		log.Fatal("exporter produced no datagrams")
	}

	// Per-repetition clock advance: one trace span, so repeated records
	// stay in the collector's open window instead of dropping late.
	spanSecs := uint32((*interval).Seconds() * float64(*intervals))
	if spanSecs == 0 {
		spanSecs = 1
	}

	type tally struct {
		datagrams, records, bytesOnWire uint64
	}
	tallies := make([]tally, *senders)
	var wg sync.WaitGroup
	t0 := time.Now()
	for s := 0; s < *senders; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			conn, err := net.Dial("udp", *addr)
			if err != nil {
				log.Fatal(err)
			}
			defer conn.Close()
			// Private copy: each sender patches its engine ID (its own
			// link at the collector, unless -single-link pins them all to
			// one) and per-repetition clock in place.
			mine := make([][]byte, len(wires))
			baseSecs := make([]uint32, len(wires))
			recs := make([]uint64, len(wires))
			for i, w := range wires {
				mine[i] = append([]byte(nil), w...)
				if !*single {
					mine[i][21] = byte(*engineID + s) // v5 header engine ID
				}
				baseSecs[i] = binary.BigEndian.Uint32(w[8:12])
				recs[i] = uint64(binary.BigEndian.Uint16(w[2:4]))
			}
			ta := &tallies[s]
			for rep := 0; ; rep++ {
				if *duration > 0 {
					if time.Since(t0) >= *duration {
						return
					}
				} else if rep >= *count {
					return
				}
				shift := uint32(rep) * spanSecs
				for i, w := range mine {
					if *duration > 0 && i%64 == 0 && time.Since(t0) >= *duration {
						return
					}
					binary.BigEndian.PutUint32(w[8:12], baseSecs[i]+shift)
					if _, err := conn.Write(w); err != nil {
						log.Fatal(err)
					}
					ta.datagrams++
					ta.records += recs[i]
					ta.bytesOnWire += uint64(len(w))
					if *pace > 0 {
						time.Sleep(*pace)
					}
				}
			}
		}(s)
	}
	wg.Wait()
	elapsed := time.Since(t0)

	var total tally
	for _, ta := range tallies {
		total.datagrams += ta.datagrams
		total.records += ta.records
		total.bytesOnWire += ta.bytesOnWire
	}
	secs := elapsed.Seconds()
	if secs <= 0 {
		secs = 1e-9
	}
	fmt.Printf("nfreplay: sent %d records in %d datagrams (%.1f KiB) to %s — %d senders × %d intervals of %v, %d flows\n",
		total.records, total.datagrams, float64(total.bytesOnWire)/1024, *addr, *senders, *intervals, *interval, *flows)
	fmt.Printf("nfreplay: achieved %.0f datagrams/s, %.0f records/s, %.2f Mbit/s over %v\n",
		float64(total.datagrams)/secs, float64(total.records)/secs,
		float64(total.bytesOnWire)*8/1e6/secs, elapsed.Round(time.Millisecond))
}
