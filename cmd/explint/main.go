// Command explint validates a Prometheus text exposition page read
// from stdin (or from the files named as arguments) against the format
// rules a scraper relies on: family metadata precedes its samples and
// families are contiguous, no family is declared twice, every sample
// value parses, and histogram series are well-formed (le boundaries
// ascending, cumulative bucket counts monotone, a +Inf bucket present
// and equal to _count).
//
// It is the CI half of the daemon smoke test:
//
//	curl -s http://127.0.0.1:8055/metrics | explint
//
// Exit status 0 means the page passed; 1 reports the first violation
// with its line number; 2 is a usage or I/O error. The validation
// itself lives in internal/report (LintExposition), unit-tested there —
// this command is only the pipe adapter.
package main

import (
	"fmt"
	"io"
	"os"

	"repro/internal/report"
)

func main() {
	if len(os.Args) == 1 {
		lint("stdin", os.Stdin)
		return
	}
	for _, path := range os.Args[1:] {
		f, err := os.Open(path)
		if err != nil {
			fmt.Fprintln(os.Stderr, "explint:", err)
			os.Exit(2)
		}
		lint(path, f)
		f.Close()
	}
}

func lint(name string, r io.Reader) {
	if err := report.LintExposition(r); err != nil {
		fmt.Fprintf(os.Stderr, "explint: %s: %v\n", name, err)
		os.Exit(1)
	}
}
