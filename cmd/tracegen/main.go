// Command tracegen synthesizes a backbone packet trace and writes it as
// a classic-format pcap file, alongside the BGP table (text format) used
// to pick destination prefixes. The resulting pair feeds cmd/elephants,
// exercising the full capture-to-classification pipeline.
//
// A non-empty -scheme additionally classifies the generated series
// under the given registry spec and prints a one-line summary — a
// sanity check that the trace actually carries elephants before it is
// fed to downstream tooling.
//
// Usage:
//
//	tracegen -out trace.pcap -table table.txt [-profile west|east|flat]
//	         [-routes N] [-flows N] [-intervals N] [-interval 5m]
//	         [-load 300e6] [-seed N] [-scheme SPEC]
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/analysis"
	"repro/internal/bgp"
	"repro/internal/experiments"
	"repro/internal/scheme"
	"repro/internal/trace"
)

func main() {
	var (
		out        = flag.String("out", "trace.pcap", "output pcap path")
		tableOut   = flag.String("table", "table.txt", "output BGP table path (text format)")
		profile    = flag.String("profile", "west", "diurnal profile: west, east or flat")
		routes     = flag.Int("routes", 20000, "BGP table size")
		flows      = flag.Int("flows", 5000, "active prefix flows")
		intervals  = flag.Int("intervals", 48, "number of measurement intervals")
		interval   = flag.Duration("interval", 5*time.Minute, "measurement interval")
		load       = flag.Float64("load", 50e6, "mean link load in bit/s")
		seed       = flag.Int64("seed", 1, "random seed")
		schemeSpec = flag.String("scheme", "", "also classify the generated series and print a summary;\n"+scheme.FlagUsage())
	)
	flag.Parse()

	var sp *scheme.Spec
	if *schemeSpec != "" {
		var err error
		// A parse error's text enumerates the registered schemes.
		sp, err = scheme.ParseValidated(*schemeSpec)
		if err != nil {
			fmt.Fprintln(os.Stderr, "tracegen:", err)
			os.Exit(2)
		}
	}
	if err := run(*out, *tableOut, *profile, *routes, *flows, *intervals, *interval, *load, *seed, sp); err != nil {
		fmt.Fprintln(os.Stderr, "tracegen:", err)
		os.Exit(1)
	}
}

func run(out, tableOut, profile string, routes, flows, intervals int, interval time.Duration, load float64, seed int64, sp *scheme.Spec) error {
	var prof trace.DiurnalProfile
	switch profile {
	case "west":
		prof = trace.WestCoastProfile()
	case "east":
		prof = trace.EastCoastProfile()
	case "flat":
		prof = trace.FlatProfile()
	default:
		return fmt.Errorf("unknown profile %q (want west, east or flat)", profile)
	}

	table, err := bgp.Generate(bgp.GenConfig{Routes: routes, Seed: seed})
	if err != nil {
		return fmt.Errorf("generating BGP table: %w", err)
	}
	link, err := trace.NewLink(trace.LinkConfig{
		Name:        profile,
		Profile:     prof,
		MeanLoadBps: load,
		Flows:       flows,
		Table:       table,
		Seed:        seed,
	})
	if err != nil {
		return fmt.Errorf("building link: %w", err)
	}

	series := link.GenerateSeries(experiments.TraceStart, interval, intervals)

	tf, err := os.Create(tableOut)
	if err != nil {
		return err
	}
	defer tf.Close()
	tw := bufio.NewWriter(tf)
	if err := table.WriteText(tw); err != nil {
		return fmt.Errorf("writing BGP table: %w", err)
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	if err := tf.Close(); err != nil {
		return err
	}

	pf, err := os.Create(out)
	if err != nil {
		return err
	}
	defer pf.Close()
	pw := bufio.NewWriterSize(pf, 1<<20)
	em := trace.NewPacketEmitter(seed + 1)
	start := time.Now()
	n, err := em.Emit(pw, series)
	if err != nil {
		return fmt.Errorf("emitting packets: %w", err)
	}
	if err := pw.Flush(); err != nil {
		return err
	}
	if err := pf.Close(); err != nil {
		return err
	}

	fi, err := os.Stat(out)
	if err != nil {
		return err
	}
	fmt.Printf("wrote %s: %d packets, %.1f MiB, %d flows, %d x %v intervals (%v)\n",
		out, n, float64(fi.Size())/(1<<20), series.NumFlows(), intervals, interval,
		time.Since(start).Round(time.Millisecond))
	fmt.Printf("wrote %s: %d routes\n", tableOut, table.Len())

	if sp != nil {
		res, err := experiments.RunScheme(series, sp)
		if err != nil {
			return fmt.Errorf("classifying generated series: %w", err)
		}
		fmt.Printf("scheme %s: mean elephants %.1f, mean elephant load fraction %.3f\n",
			sp.Name(),
			analysis.MeanInt(analysis.CountSeries(res)),
			analysis.MeanFloat(analysis.FractionSeries(res)))
	}
	return nil
}
