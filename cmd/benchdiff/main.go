// Command benchdiff compares a `go test -bench` run against a committed
// JSON baseline and fails on regressions beyond a tolerance — the guard
// that keeps the hot-path numbers in BENCH_baseline.json honest. Two
// axes are gated: ns/op (-tolerance) and allocs/op (-alloc-tolerance).
// Benchmarks whose baseline is exactly zero allocs/op are pinned hard:
// any allocation fails regardless of the tolerance, since a zero-alloc
// steady state is a designed-in property, not a number that drifts.
//
// Capture (or refresh) the baseline:
//
//	go test -bench . -benchmem -run '^$' ./... | go run ./cmd/benchdiff -write -baseline BENCH_baseline.json
//
// Compare a fresh run (exits 1 when any benchmark regresses more than
// -tolerance in ns/op):
//
//	go test -bench . -benchmem -run '^$' ./... | go run ./cmd/benchdiff -baseline BENCH_baseline.json
//
// Benchmarks present on only one side are reported but never fail the
// comparison, so partial runs (-bench SomeName) work, and baselines
// recorded on different hardware are expected to be compared with a
// generous tolerance or regenerated.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
)

// Benchmark is one benchmark's baseline entry.
type Benchmark struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
}

// Baseline is the committed BENCH_baseline.json document.
type Baseline struct {
	// Note documents how the numbers were captured.
	Note       string      `json:"note,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

func main() {
	var (
		baselinePath = flag.String("baseline", "BENCH_baseline.json", "baseline JSON file")
		in           = flag.String("in", "-", "bench output to read (`-` for stdin)")
		write        = flag.Bool("write", false, "write the parsed run as the new baseline instead of comparing")
		tolerance    = flag.Float64("tolerance", 0.30, "allowed fractional ns/op regression before failing")
		allocTol     = flag.Float64("alloc-tolerance", 0.10, "allowed fractional allocs/op regression before failing; zero-alloc baselines must stay at exactly zero")
		note         = flag.String("note", "go test -bench . -benchmem -run '^$' ./...", "capture note stored with -write")
		top          = flag.Int("top", 0, "also print the N largest ns/op movers as a summary (0 disables)")
	)
	flag.Parse()

	r := io.Reader(os.Stdin)
	if *in != "-" {
		f, err := os.Open(*in)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		r = f
	}
	run, err := parseBench(r)
	if err != nil {
		fatal(err)
	}
	if len(run) == 0 {
		fatal(fmt.Errorf("no benchmark lines found in input"))
	}

	if *write {
		sort.Slice(run, func(i, j int) bool { return run[i].Name < run[j].Name })
		doc := Baseline{Note: *note, Benchmarks: run}
		out, err := json.MarshalIndent(doc, "", "  ")
		if err != nil {
			fatal(err)
		}
		if err := os.WriteFile(*baselinePath, append(out, '\n'), 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %d benchmarks to %s\n", len(run), *baselinePath)
		return
	}

	raw, err := os.ReadFile(*baselinePath)
	if err != nil {
		fatal(err)
	}
	var base Baseline
	if err := json.Unmarshal(raw, &base); err != nil {
		fatal(fmt.Errorf("%s: %w", *baselinePath, err))
	}
	if compare(base, run, *tolerance, *allocTol, *top) > 0 {
		os.Exit(1)
	}
}

// compare prints a per-benchmark report and returns the number of
// regressions: ns/op beyond tolerance, or allocs/op beyond allocTol.
// A baseline of exactly zero allocs/op is a hard pin — any allocation
// at all regresses it, because zero-alloc steady states are the product
// of deliberate arena/reuse work and "one alloc per op" is a structural
// change, not noise.
func compare(base Baseline, run []Benchmark, tolerance, allocTol float64, top int) int {
	baseByName := make(map[string]Benchmark, len(base.Benchmarks))
	for _, b := range base.Benchmarks {
		baseByName[b.Name] = b
	}
	sort.Slice(run, func(i, j int) bool { return run[i].Name < run[j].Name })
	regressions := 0
	seen := make(map[string]bool, len(run))
	type mover struct {
		name      string
		delta     float64
		ns, refNs float64
	}
	var movers []mover
	for _, b := range run {
		seen[b.Name] = true
		ref, ok := baseByName[b.Name]
		if !ok {
			fmt.Printf("NEW       %-60s %14.0f ns/op\n", b.Name, b.NsPerOp)
			continue
		}
		delta := 0.0
		if ref.NsPerOp > 0 {
			delta = b.NsPerOp/ref.NsPerOp - 1
		}
		movers = append(movers, mover{b.Name, delta, b.NsPerOp, ref.NsPerOp})
		allocBad := false
		if ref.AllocsPerOp == 0 {
			allocBad = b.AllocsPerOp > 0
		} else {
			allocBad = b.AllocsPerOp > ref.AllocsPerOp*(1+allocTol)
		}
		status := "ok"
		if delta > tolerance {
			status = "REGRESSED"
			regressions++
		} else if allocBad {
			status = "ALLOCS"
			regressions++
		} else if delta < -tolerance {
			status = "improved"
		}
		fmt.Printf("%-9s %-60s %14.0f ns/op  baseline %14.0f  (%+.1f%%)  allocs %.0f -> %.0f\n",
			status, b.Name, b.NsPerOp, ref.NsPerOp, 100*delta, ref.AllocsPerOp, b.AllocsPerOp)
	}
	for _, b := range base.Benchmarks {
		if !seen[b.Name] {
			fmt.Printf("MISSING   %-60s (in baseline, not in this run)\n", b.Name)
		}
	}
	if regressions > 0 {
		fmt.Printf("\n%d benchmark(s) regressed (ns/op beyond %.0f%%, or allocs/op beyond %.0f%% — zero-alloc baselines must stay zero)\n",
			regressions, 100*tolerance, 100*allocTol)
	}
	// The -top summary condenses the full table into the N largest
	// ns/op movers in either direction — the CI bench report's digest.
	if top > 0 {
		sort.Slice(movers, func(i, j int) bool {
			di, dj := movers[i].delta, movers[j].delta
			if di < 0 {
				di = -di
			}
			if dj < 0 {
				dj = -dj
			}
			return di > dj
		})
		if top > len(movers) {
			top = len(movers)
		}
		fmt.Printf("\ntop %d movers vs baseline:\n", top)
		for _, m := range movers[:top] {
			fmt.Printf("  %+7.1f%%  %-60s %14.0f ns/op  baseline %14.0f\n",
				100*m.delta, m.name, m.ns, m.refNs)
		}
	}
	return regressions
}

// parseBench extracts name/ns-op/allocs-op triples from `go test -bench`
// text output. The -GOMAXPROCS suffix is stripped so baselines transfer
// across machines with different core counts.
func parseBench(r io.Reader) ([]Benchmark, error) {
	var out []Benchmark
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		// BenchmarkName-8  N  123.4 ns/op  [metrics...]  12 B/op  3 allocs/op
		if len(fields) < 4 {
			continue
		}
		name := fields[0]
		if i := strings.LastIndex(name, "-"); i > 0 {
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i]
			}
		}
		b := Benchmark{Name: name, NsPerOp: -1}
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			switch fields[i+1] {
			case "ns/op":
				b.NsPerOp = v
			case "allocs/op":
				b.AllocsPerOp = v
			}
		}
		if b.NsPerOp >= 0 {
			out = append(out, b)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchdiff:", err)
	os.Exit(2)
}
