package main

import (
	"strings"
	"testing"
)

func TestParseBench(t *testing.T) {
	in := `goos: linux
BenchmarkFast-8             1000      1234 ns/op       12 B/op        3 allocs/op
BenchmarkMetric             2000      5678 ns/op       42.0 flows/interval       0 B/op        0 allocs/op
BenchmarkNoMem-16            500      9999 ns/op
PASS
`
	run, err := parseBench(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	want := []Benchmark{
		{Name: "BenchmarkFast", NsPerOp: 1234, AllocsPerOp: 3},
		{Name: "BenchmarkMetric", NsPerOp: 5678, AllocsPerOp: 0},
		{Name: "BenchmarkNoMem", NsPerOp: 9999, AllocsPerOp: 0},
	}
	if len(run) != len(want) {
		t.Fatalf("parsed %d benchmarks, want %d: %+v", len(run), len(want), run)
	}
	for i := range want {
		if run[i] != want[i] {
			t.Errorf("benchmark %d = %+v, want %+v", i, run[i], want[i])
		}
	}
}

func TestCompareGates(t *testing.T) {
	base := Baseline{Benchmarks: []Benchmark{
		{Name: "BenchmarkA", NsPerOp: 1000, AllocsPerOp: 10},
		{Name: "BenchmarkZero", NsPerOp: 1000, AllocsPerOp: 0},
		{Name: "BenchmarkGone", NsPerOp: 1000, AllocsPerOp: 0},
	}}
	cases := []struct {
		name string
		run  []Benchmark
		want int
	}{
		{"clean", []Benchmark{{Name: "BenchmarkA", NsPerOp: 1100, AllocsPerOp: 10}}, 0},
		{"ns regression", []Benchmark{{Name: "BenchmarkA", NsPerOp: 1400, AllocsPerOp: 10}}, 1},
		{"alloc regression", []Benchmark{{Name: "BenchmarkA", NsPerOp: 1000, AllocsPerOp: 12}}, 1},
		{"alloc within tolerance", []Benchmark{{Name: "BenchmarkA", NsPerOp: 1000, AllocsPerOp: 11}}, 0},
		{"zero baseline stays zero", []Benchmark{{Name: "BenchmarkZero", NsPerOp: 1000, AllocsPerOp: 1}}, 1},
		{"zero baseline ok", []Benchmark{{Name: "BenchmarkZero", NsPerOp: 1000, AllocsPerOp: 0}}, 0},
		{"new and missing never fail", []Benchmark{{Name: "BenchmarkNew", NsPerOp: 5}}, 0},
	}
	for _, tc := range cases {
		if got := compare(base, tc.run, 0.30, 0.10, 0); got != tc.want {
			t.Errorf("%s: %d regressions, want %d", tc.name, got, tc.want)
		}
	}
	// The -top movers summary is reporting only: it must not change the
	// gate verdict.
	for _, tc := range cases {
		if got := compare(base, tc.run, 0.30, 0.10, 3); got != tc.want {
			t.Errorf("%s with -top: %d regressions, want %d", tc.name, got, tc.want)
		}
	}
}
