// Command bgpgen generates a synthetic BGP routing table with the
// empirical 2001 prefix-length mix and writes it in the repository's
// text format (one "prefix nexthop-AS tier" line per route).
//
// Usage:
//
//	bgpgen -out table.txt -routes 120000 [-seed N] [-summary]
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"

	"repro/internal/bgp"
	"repro/internal/report"
)

func main() {
	var (
		out     = flag.String("out", "table.txt", "output path")
		routes  = flag.Int("routes", 120000, "number of routes")
		seed    = flag.Int64("seed", 1, "random seed")
		summary = flag.Bool("summary", false, "print the prefix-length histogram")
	)
	flag.Parse()

	if err := run(*out, *routes, *seed, *summary); err != nil {
		fmt.Fprintln(os.Stderr, "bgpgen:", err)
		os.Exit(1)
	}
}

func run(out string, routes int, seed int64, summary bool) error {
	table, err := bgp.Generate(bgp.GenConfig{Routes: routes, Seed: seed})
	if err != nil {
		return err
	}
	f, err := os.Create(out)
	if err != nil {
		return err
	}
	defer f.Close()
	w := bufio.NewWriter(f)
	if err := table.WriteText(w); err != nil {
		return err
	}
	if err := w.Flush(); err != nil {
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Printf("wrote %s: %d routes\n", out, table.Len())
	if summary {
		hist := table.PrefixLengthHistogram()
		tab := report.NewTable("prefix length", "routes")
		for l, n := range hist {
			if n > 0 {
				tab.AddRow(fmt.Sprintf("/%d", l), n)
			}
		}
		fmt.Print(tab.String())
	}
	return nil
}
