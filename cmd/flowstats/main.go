// Command flowstats characterises the flow-size distribution of a pcap
// capture the way Section I of the paper characterises backbone traffic:
// per-prefix volumes, concentration (Gini, top-share), heavy-tail
// analysis (aest + Hill), and a log-log CCDF rendered as an ASCII chart.
//
// A non-empty -scheme additionally streams the capture through the
// classification pipeline under the given registry spec (bounded
// memory, window derived from the scheme's latent-heat lookback) and
// prints a per-interval elephant summary next to the whole-capture
// distribution stats.
//
// Usage:
//
//	flowstats -pcap trace.pcap -table table.txt [-top 10] [-chart]
//	          [-scheme SPEC] [-interval 5m]
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"net/netip"
	"os"
	"sort"
	"time"

	"repro/internal/agg"
	"repro/internal/analysis"
	"repro/internal/bgp"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/report"
	"repro/internal/scheme"
	"repro/internal/stats"
)

func main() {
	var (
		pcapPath   = flag.String("pcap", "", "input pcap path (required)")
		tablePath  = flag.String("table", "", "input BGP table path (required)")
		top        = flag.Int("top", 10, "list the top-N flows by volume")
		chart      = flag.Bool("chart", true, "render the log-log CCDF chart")
		schemeSpec = flag.String("scheme", "", "also classify the capture per interval;\n"+scheme.FlagUsage())
		interval   = flag.Duration("interval", 5*time.Minute, "measurement interval for -scheme classification")
	)
	flag.Parse()
	if *pcapPath == "" || *tablePath == "" {
		flag.Usage()
		os.Exit(2)
	}
	var sp *scheme.Spec
	if *schemeSpec != "" {
		var err error
		// A parse error's text enumerates the registered schemes.
		sp, err = scheme.ParseValidated(*schemeSpec)
		if err != nil {
			fmt.Fprintln(os.Stderr, "flowstats:", err)
			os.Exit(2)
		}
	}
	if err := run(*pcapPath, *tablePath, *top, *chart, sp, *interval); err != nil {
		fmt.Fprintln(os.Stderr, "flowstats:", err)
		os.Exit(1)
	}
}

func run(pcapPath, tablePath string, top int, chart bool, sp *scheme.Spec, interval time.Duration) error {
	tf, err := os.Open(tablePath)
	if err != nil {
		return err
	}
	table, err := bgp.ReadText(bufio.NewReader(tf))
	tf.Close()
	if err != nil {
		return fmt.Errorf("reading BGP table: %w", err)
	}

	pf, err := os.Open(pcapPath)
	if err != nil {
		return err
	}
	defer pf.Close()
	src, err := agg.NewPcapPacketSource(bufio.NewReaderSize(pf, 1<<20))
	if err != nil {
		return err
	}

	// Whole-capture per-prefix volumes (bytes).
	volumes := make(map[netip.Prefix]float64)
	var totalBytes float64
	var unrouted uint64
	for {
		_, sum, err := src.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return err
		}
		route, ok := table.Lookup(sum.DstIP)
		if !ok {
			unrouted++
			continue
		}
		volumes[route.Prefix] += float64(sum.WireLength)
		totalBytes += float64(sum.WireLength)
	}
	ps := src.ParserStats()
	fmt.Printf("capture: %d frames (%d non-IP, %d errors), %d routed flows, %d unrouted packets, %.1f MiB attributed\n\n",
		ps.Frames, ps.NonIP, ps.Errors, len(volumes), unrouted, totalBytes/(1<<20))
	if len(volumes) == 0 {
		return fmt.Errorf("no attributable traffic")
	}

	vols := make([]float64, 0, len(volumes))
	for _, v := range volumes {
		vols = append(vols, v)
	}

	// Concentration.
	sum := stats.Summarize(vols)
	gini, err := stats.Gini(vols)
	if err != nil {
		return err
	}
	top10, _ := stats.TopShare(vols, 0.10)
	top1, _ := stats.TopShare(vols, 0.01)
	tab := report.NewTable("metric", "value")
	tab.AddRow("flows", sum.N)
	tab.AddRow("mean flow volume", fmt.Sprintf("%.1f KiB", sum.Mean/1024))
	tab.AddRow("max flow volume", fmt.Sprintf("%.1f KiB", sum.Max/1024))
	tab.AddRow("gini coefficient", fmt.Sprintf("%.3f", gini))
	tab.AddRow("top 10% flows carry", fmt.Sprintf("%.1f%%", top10*100))
	tab.AddRow("top 1% flows carry", fmt.Sprintf("%.1f%%", top1*100))
	fmt.Print(tab.String())

	// Heavy-tail analysis.
	res := stats.Aest(vols, stats.AestConfig{})
	fmt.Println()
	if res.TailFound {
		fmt.Printf("aest: power-law tail detected from %.1f KiB (%.1f%% of flows), alpha = %.2f (slope cross-check %.2f)\n",
			res.TailOnset/1024, res.TailFraction*100, res.Alpha, res.SlopeAlpha)
		tailFlows := 0
		for _, v := range vols {
			if v >= res.TailOnset {
				tailFlows++
			}
		}
		if k := tailFlows - 1; k >= 2 {
			if h, err := stats.Hill(vols, k); err == nil {
				fmt.Printf("hill(k=%d): alpha = %.2f\n", k, h)
			}
		}
	} else {
		fmt.Println("aest: no power-law tail detected")
	}

	// Top talkers.
	if top > 0 {
		type kv struct {
			p netip.Prefix
			v float64
		}
		rows := make([]kv, 0, len(volumes))
		for p, v := range volumes {
			rows = append(rows, kv{p, v})
		}
		sort.Slice(rows, func(i, j int) bool {
			if rows[i].v != rows[j].v {
				return rows[i].v > rows[j].v
			}
			return rows[i].p.String() < rows[j].p.String()
		})
		if top > len(rows) {
			top = len(rows)
		}
		fmt.Printf("\ntop %d flows by volume:\n", top)
		tt := report.NewTable("prefix", "volume", "share")
		for _, r := range rows[:top] {
			tt.AddRow(r.p.String(),
				fmt.Sprintf("%.1f KiB", r.v/1024),
				fmt.Sprintf("%.2f%%", 100*r.v/totalBytes))
		}
		fmt.Print(tt.String())
	}

	// CCDF chart.
	if chart {
		c := stats.NewCCDF(vols)
		lx, lp := c.LogLog()
		fmt.Println()
		if err := report.Chart(os.Stdout, report.ChartConfig{
			Title:  "flow volume CCDF (log10 bytes vs log10 P[X>x])",
			Height: 12, XLabel: "log10 volume ->",
		}, report.Series{Label: "log10 P[X>x]", Values: lp}); err != nil {
			return err
		}
		_ = lx
	}

	// Optional classification pass: stream the capture again through
	// the scheme's pipeline with bounded memory.
	if sp != nil {
		if err := classify(pcapPath, table, sp, interval); err != nil {
			return fmt.Errorf("classifying capture: %w", err)
		}
	}
	return nil
}

// classify reopens the capture and classifies it per interval under the
// spec via the streaming engine path; the accumulator window follows
// the scheme's latent-heat lookback (engine.StreamWindow).
func classify(pcapPath string, table *bgp.Table, sp *scheme.Spec, interval time.Duration) error {
	pf, err := os.Open(pcapPath)
	if err != nil {
		return err
	}
	defer pf.Close()
	src, err := agg.NewPacketRecordSource(bufio.NewReaderSize(pf, 1<<20), table)
	if err != nil {
		return err
	}
	lr := engine.RunStreamLink(engine.StreamLink{
		ID:       pcapPath,
		Source:   src,
		Interval: interval,
		Window:   engine.StreamWindow(sp, 0),
		Config:   sp.Factory(),
	})
	if lr.Err != nil {
		return lr.Err
	}
	fmt.Printf("\nclassification under %s (%v intervals):\n", sp.Name(), interval)
	tab := report.NewTable("metric", "value")
	tab.AddRow("intervals", len(lr.Results))
	tab.AddRow("mean active flows", fmt.Sprintf("%.1f", meanActive(lr.Results)))
	tab.AddRow("mean elephants", fmt.Sprintf("%.1f", analysis.MeanInt(analysis.CountSeries(lr.Results))))
	tab.AddRow("mean elephant load fraction", fmt.Sprintf("%.3f", analysis.MeanFloat(analysis.FractionSeries(lr.Results))))
	fmt.Print(tab.String())
	return nil
}

func meanActive(results []core.Result) float64 {
	if len(results) == 0 {
		return 0
	}
	var sum float64
	for i := range results {
		sum += float64(results[i].ActiveFlows)
	}
	return sum / float64(len(results))
}
