// Command calibrate sweeps the synthetic-workload shape parameters and
// scores each candidate against the paper's headline numbers, printing a
// ranked table. It is how the repository's default shape was chosen; see
// DESIGN.md ("Deterministic synthesis") and EXPERIMENTS.md.
//
// Paper targets (Sections II-III):
//
//	single-feature mean holding     20-40 min
//	single-feature 1-slot flows     > 1000 per link
//	two-feature mean holding        ~2 h
//	two-feature 1-slot flows        ~50
//	mean elephants                  ~600 west / ~500 east
//	two-feature load fraction       ~0.6
//
// By default the two-feature metrics average the paper's two schemes
// (aest and constant-load, latent heat on); -scheme replaces them with
// one registry spec, so the workload can be calibrated against any
// registered scheme — baselines included.
//
// Usage:
//
//	calibrate [-flows 9000] [-intervals 336] [-seed 1]
//	          [-tailindex 1.3,1.5,1.7] [-tailshare 0.04,0.08]
//	          [-burstsigma 0.9] [-burstrho 0.55] [-scheme SPEC]
package main

import (
	"flag"
	"fmt"
	"math"
	"os"
	"strconv"
	"strings"

	"repro/internal/experiments"
	"repro/internal/report"
	"repro/internal/scheme"
)

func main() {
	var (
		flows      = flag.Int("flows", 9000, "flows per link")
		intervals  = flag.Int("intervals", 336, "intervals")
		seed       = flag.Int64("seed", 1, "seed")
		tailIndex  = flag.String("tailindex", "1.3", "comma list of Pareto tail indices")
		tailShare  = flag.String("tailshare", "0.04", "comma list of tail shares")
		burstSigma = flag.String("burstsigma", "0.9", "comma list of burst sigmas")
		burstRho   = flag.String("burstrho", "0.55", "comma list of burst rhos")
		schemeSpec = flag.String("scheme", "", "score the two-feature metrics under one registry spec instead of the paper pair;\n"+scheme.FlagUsage())
	)
	flag.Parse()

	var sp *scheme.Spec
	if *schemeSpec != "" {
		var err error
		// A parse error's text enumerates the registered schemes.
		sp, err = scheme.ParseValidated(*schemeSpec)
		if err != nil {
			fmt.Fprintln(os.Stderr, "calibrate:", err)
			os.Exit(2)
		}
	}

	tis := parseList(*tailIndex)
	tss := parseList(*tailShare)
	bss := parseList(*burstSigma)
	brs := parseList(*burstRho)

	tab := report.NewTable("tailIdx", "tailShare", "bSigma", "bRho",
		"eleph W/E", "frac", "hold1", "hold2", "1slot1", "1slot2", "score")
	type scored struct {
		row   []interface{}
		score float64
	}
	var best *scored
	for _, ti := range tis {
		for _, ts := range tss {
			for _, bs := range bss {
				for _, br := range brs {
					cfg := experiments.LinksConfig{
						Flows:     *flows,
						Intervals: *intervals,
						Seed:      *seed,
						Shape: experiments.ShapeConfig{
							TailIndex:  ti,
							TailShare:  ts,
							BurstSigma: bs,
							BurstRho:   br,
						},
					}
					m, err := measure(cfg, sp)
					if err != nil {
						fmt.Fprintf(os.Stderr, "calibrate: ti=%g ts=%g bs=%g br=%g: %v\n", ti, ts, bs, br, err)
						continue
					}
					s := score(m)
					row := []interface{}{
						fmt.Sprintf("%g", ti), fmt.Sprintf("%g", ts),
						fmt.Sprintf("%g", bs), fmt.Sprintf("%g", br),
						fmt.Sprintf("%.0f/%.0f", m.elephW, m.elephE),
						fmt.Sprintf("%.2f", m.frac),
						fmt.Sprintf("%.0fm", m.hold1),
						fmt.Sprintf("%.1fh", m.hold2/60),
						fmt.Sprintf("%.0f", m.oneSlot1),
						fmt.Sprintf("%.0f", m.oneSlot2),
						fmt.Sprintf("%.3f", s),
					}
					tab.AddRow(row...)
					if best == nil || s < best.score {
						best = &scored{row: row, score: s}
					}
				}
			}
		}
	}
	fmt.Print(tab.String())
	if best != nil {
		fmt.Printf("\nbest (lower is better): %v\n", best.row)
	}
}

// metrics are averaged over the four (scheme, link) runs unless noted.
type metrics struct {
	elephW, elephE     float64 // two-feature mean elephant count per link
	frac               float64 // two-feature mean load fraction
	hold1, hold2       float64 // single-/two-feature mean holding (min)
	oneSlot1, oneSlot2 float64 // single-/two-feature 1-slot flows
}

func measure(cfg experiments.LinksConfig, sp *scheme.Spec) (metrics, error) {
	ls, err := experiments.BuildLinks(cfg)
	if err != nil {
		return metrics{}, err
	}
	single, err := experiments.SingleFeatureVolatility(ls)
	if err != nil {
		return metrics{}, err
	}
	var two []experiments.VolatilityResult
	if sp != nil {
		two, err = experiments.SchemeStability(ls, sp)
	} else {
		two, err = experiments.TwoFeatureStability(ls)
	}
	if err != nil {
		return metrics{}, err
	}
	var m metrics
	var nw, ne float64
	for _, r := range single {
		m.hold1 += r.MeanHolding.Minutes() / float64(len(single))
		m.oneSlot1 += float64(r.SingleIntervalFlows) / float64(len(single))
	}
	for _, r := range two {
		m.hold2 += r.MeanHolding.Minutes() / float64(len(two))
		m.oneSlot2 += float64(r.SingleIntervalFlows) / float64(len(two))
		m.frac += r.MeanLoadFraction / float64(len(two))
		if r.Run.Link == "west" {
			m.elephW += r.MeanElephants
			nw++
		} else {
			m.elephE += r.MeanElephants
			ne++
		}
	}
	if nw > 0 {
		m.elephW /= nw
	}
	if ne > 0 {
		m.elephE /= ne
	}
	return m, nil
}

// score is a sum of squared log-deviations from the paper targets; the
// holding-time targets use the band midpoints (30 min, 120 min).
func score(m metrics) float64 {
	dev := func(got, want float64) float64 {
		if got <= 0 || want <= 0 {
			return 4
		}
		d := math.Log(got / want)
		return d * d
	}
	return dev(m.elephW, 600) + dev(m.elephE, 500) +
		dev(m.frac, 0.6) +
		dev(m.hold1, 30) + dev(m.hold2, 120) +
		dev(m.oneSlot1, 1200) + dev(m.oneSlot2, 50)
}

func parseList(s string) []float64 {
	var out []float64
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		v, err := strconv.ParseFloat(part, 64)
		if err != nil {
			fmt.Fprintf(os.Stderr, "calibrate: bad value %q: %v\n", part, err)
			os.Exit(2)
		}
		out = append(out, v)
	}
	return out
}
