// Command experiments regenerates every figure and quantitative claim of
// the paper "A Pragmatic Definition of Elephants in Internet Backbone
// Traffic" (Papagiannaki et al., IMC 2002) on the synthetic two-link
// setup. Output is text tables plus ASCII charts; -csvdir additionally
// dumps each figure's series as CSV for external plotting.
//
// Usage:
//
//	experiments [-quick] [-only fig1a,fig1b,...] [-csvdir DIR] [-seed N]
//
// -cpuprofile and -memprofile write pprof profiles covering the figure
// runs (setup included), making the command double as the profiling
// harness for the classification hot path at paper scale.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"repro/internal/experiments"
	"repro/internal/report"
	"repro/internal/scheme"
)

func main() {
	var (
		quick      = flag.Bool("quick", false, "run at reduced scale (fast; shapes only)")
		only       = flag.String("only", "", "comma-separated subset: fig1a,fig1b,fig1c,single,two,prefix,interval,alpha,window,beta,baseline,concentration,sampling")
		csvdir     = flag.String("csvdir", "", "directory to write per-figure CSV files (created if missing)")
		seed       = flag.Int64("seed", 1, "random seed for the synthetic workload")
		charts     = flag.Bool("charts", true, "render ASCII charts")
		schemeSpec = flag.String("scheme", "load+latent", "scheme used by the interval/sampling sections;\n"+scheme.FlagUsage())
		cpuprofile = flag.String("cpuprofile", "", "write a CPU profile covering the selected sections to this file")
		memprofile = flag.String("memprofile", "", "write a heap profile taken after the selected sections to this file")
	)
	flag.Parse()

	// A parse error's text enumerates the registered schemes.
	sp, err := scheme.ParseValidated(*schemeSpec)
	if err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(2)
	}
	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(2)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(2)
		}
	}
	runErr := run(*quick, *only, *csvdir, *seed, *charts, sp)
	// Flushed before the os.Exit paths below, which skip deferred calls.
	if *cpuprofile != "" {
		pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		f, err := os.Create(*memprofile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(2)
		}
		runtime.GC() // settle the heap so the profile shows retained allocations
		if err := pprof.WriteHeapProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(2)
		}
		f.Close()
	}
	if runErr != nil {
		fmt.Fprintln(os.Stderr, "experiments:", runErr)
		os.Exit(1)
	}
}

func run(quick bool, only, csvdir string, seed int64, charts bool, sp *scheme.Spec) error {
	want := map[string]bool{}
	if only != "" {
		for _, k := range strings.Split(only, ",") {
			want[strings.TrimSpace(k)] = true
		}
	}
	sel := func(k string) bool { return len(want) == 0 || want[k] }

	cfg := experiments.LinksConfig{Seed: seed}
	if quick {
		cfg = experiments.SmallConfig()
		cfg.Seed = seed
	}
	start := time.Now()
	fmt.Printf("# Building synthetic two-link setup (routes=%d flows=%d intervals=%d seed=%d)\n",
		orDefault(cfg.Routes, 60000), orDefault(cfg.Flows, 6500), orDefault(cfg.Intervals, 336), seed)
	ls, err := experiments.BuildLinks(cfg)
	if err != nil {
		return err
	}
	fmt.Printf("# Setup ready in %v: west flows=%d east flows=%d\n\n",
		time.Since(start).Round(time.Millisecond), ls.West.NumFlows(), ls.East.NumFlows())

	var runsLH []experiments.FigureRun
	needRuns := sel("fig1a") || sel("fig1b") || sel("fig1c")
	if needRuns {
		runsLH, err = experiments.RunFigure1(ls, true)
		if err != nil {
			return err
		}
	}

	if sel("fig1a") {
		series := experiments.Fig1a(runsLH)
		fmt.Println("== Figure 1(a): number of elephants per interval (latent heat on)")
		tab := report.NewTable("series", "mean", "min", "max", "spark")
		for _, s := range series {
			mn, mx, mean := summarize(s.Values)
			tab.AddRow(s.Label, fmt.Sprintf("%.0f", mean), fmt.Sprintf("%.0f", mn), fmt.Sprintf("%.0f", mx), report.Sparkline(s.Values))
		}
		fmt.Print(tab.String())
		if charts {
			_ = report.Chart(os.Stdout, report.ChartConfig{Title: "Fig 1(a) — elephants per interval", XLabel: "interval (5 min slots)"}, series...)
		}
		if err := writeCSV(csvdir, "fig1a.csv", "interval", series); err != nil {
			return err
		}
		fmt.Println()
	}

	if sel("fig1b") {
		series := experiments.Fig1b(runsLH)
		fmt.Println("== Figure 1(b): fraction of traffic apportioned to elephants")
		tab := report.NewTable("series", "mean", "min", "max", "spark")
		for _, s := range series {
			mn, mx, mean := summarize(s.Values)
			tab.AddRow(s.Label, fmt.Sprintf("%.3f", mean), fmt.Sprintf("%.3f", mn), fmt.Sprintf("%.3f", mx), report.Sparkline(s.Values))
		}
		fmt.Print(tab.String())
		if charts {
			_ = report.Chart(os.Stdout, report.ChartConfig{Title: "Fig 1(b) — elephant load fraction", YMin: 0, YMax: 1, XLabel: "interval (5 min slots)"}, series...)
		}
		if err := writeCSV(csvdir, "fig1b.csv", "interval", series); err != nil {
			return err
		}
		fmt.Println()
	}

	if sel("fig1c") {
		results, err := experiments.Fig1c(runsLH, experiments.Fig1cConfig{})
		if err != nil {
			return err
		}
		fmt.Println("== Figure 1(c): average holding time in the elephant state (busy window)")
		tab := report.NewTable("series", "flows", "mean holding", "1-interval flows")
		for _, r := range results {
			tab.AddRow(r.Run.Label(), r.Stats.Flows,
				fmt.Sprintf("%.1f slots (%v)", r.Stats.MeanHolding, time.Duration(r.Stats.MeanHolding*float64(ls.Cfg.Interval)).Round(time.Minute)),
				r.Stats.SingleIntervalFlows)
		}
		fmt.Print(tab.String())
		series := experiments.Fig1cSeries(results)
		if charts {
			_ = report.Chart(os.Stdout, report.ChartConfig{Title: "Fig 1(c) — holding-time histogram (log y)", LogY: true, XLabel: "average holding time (intervals)"}, series...)
		}
		if err := writeCSV(csvdir, "fig1c.csv", "holding_intervals", series); err != nil {
			return err
		}
		fmt.Println()
	}

	if sel("single") {
		rows, err := experiments.SingleFeatureVolatility(ls)
		if err != nil {
			return err
		}
		fmt.Println("== Section II: single-feature volatility (paper: 20-40 min holding, >1000 one-interval flows)")
		printVolatility(rows)
		fmt.Println()
	}

	if sel("two") {
		rows, err := experiments.TwoFeatureStability(ls)
		if err != nil {
			return err
		}
		fmt.Println("== Section III: two-feature stability (paper: ~2 h holding, ~50 one-interval flows, ~600/~500 elephants, ~0.6 load)")
		printVolatility(rows)
		fmt.Println()
	}

	if sel("prefix") {
		rows, err := experiments.PrefixLength(ls)
		if err != nil {
			return err
		}
		fmt.Println("== Section III: prefix-length characteristics (paper: elephants span /12-/26; ~100 active /8s, ~3 elephant /8s)")
		tab := report.NewTable("series", "elephant flows", "len range", "active /8", "elephant /8")
		for _, r := range rows {
			tab.AddRow(r.Run.Label(), r.Stats.TotalElephantFlows(),
				fmt.Sprintf("/%d-/%d", r.Stats.MinLen, r.Stats.MaxLen),
				r.Stats.ActiveSlash8, r.Stats.ElephantSlash8)
		}
		fmt.Print(tab.String())
		fmt.Println()
	}

	if sel("interval") {
		rows, err := experiments.IntervalSensitivity(cfg, nil, sp)
		if err != nil {
			return err
		}
		fmt.Println("== Section II: measurement-interval sensitivity (paper: similar results at 1, 5, 10 min)")
		tab := report.NewTable("interval", "scheme", "mean elephants", "load fraction", "mean holding (min)")
		for _, r := range rows {
			tab.AddRow(r.Interval.String(), r.Scheme, fmt.Sprintf("%.0f", r.MeanElephants),
				fmt.Sprintf("%.3f", r.MeanLoadFraction), fmt.Sprintf("%.0f", r.MeanHoldingMinutes))
		}
		fmt.Print(tab.String())
		fmt.Println()
	}

	ablation := func(key, title string, f func() ([]experiments.AblationRow, error)) error {
		if !sel(key) {
			return nil
		}
		rows, err := f()
		if err != nil {
			return err
		}
		fmt.Println(title)
		printAblation(rows)
		fmt.Println()
		return nil
	}
	if err := ablation("alpha", "== Ablation: EWMA weight alpha (paper: 0.5 'sufficiently smooth')",
		func() ([]experiments.AblationRow, error) { return experiments.AblationAlpha(ls, nil) }); err != nil {
		return err
	}
	if err := ablation("window", "== Ablation: latent-heat window (paper: 12 slots = 1 h)",
		func() ([]experiments.AblationRow, error) { return experiments.AblationWindow(ls, nil) }); err != nil {
		return err
	}
	if err := ablation("beta", "== Ablation: constant-load beta (paper: 0.8)",
		func() ([]experiments.AblationRow, error) { return experiments.AblationBeta(ls, nil) }); err != nil {
		return err
	}

	if sel("baseline") {
		rows, err := experiments.BaselineComparison(ls)
		if err != nil {
			return err
		}
		fmt.Println("== Extension: baseline comparison (what adaptive threshold + latent heat buy)")
		tab := report.NewTable("strategy", "mean elephants", "count CV", "load fraction", "set jaccard", "mean holding", "1-interval", "reclass")
		for _, r := range rows {
			tab.AddRow(r.Strategy,
				fmt.Sprintf("%.0f", r.MeanElephants),
				fmt.Sprintf("%.3f", r.CountCV),
				fmt.Sprintf("%.3f", r.MeanLoadFraction),
				fmt.Sprintf("%.3f", r.MeanSetJaccard),
				fmt.Sprintf("%.1f", r.MeanHoldingIntervals),
				r.SingleIntervalFlows, r.Reclassifications)
		}
		fmt.Print(tab.String())
		fmt.Println()
	}

	if sel("concentration") {
		rows, err := experiments.Concentration(ls)
		if err != nil {
			return err
		}
		fmt.Println("== Premise: elephants-and-mice concentration (intro: few flows carry most traffic)")
		tab := report.NewTable("link", "interval", "flows", "gini", "top-10% share", "top-1% share", "tail index")
		for _, r := range rows {
			tail := "-"
			if r.TailIndex > 0 {
				tail = fmt.Sprintf("%.2f", r.TailIndex)
			}
			tab.AddRow(r.Link, r.Interval, r.Flows,
				fmt.Sprintf("%.3f", r.Gini),
				fmt.Sprintf("%.3f", r.Top10Share),
				fmt.Sprintf("%.3f", r.Top1Share), tail)
		}
		fmt.Print(tab.String())
		fmt.Println()
	}

	if sel("sampling") {
		rows, err := experiments.SamplingImpact(ls, nil, sp)
		if err != nil {
			return err
		}
		fmt.Println("== Extension: 1-in-N packet sampling impact (sampled-NetFlow deployment)")
		tab := report.NewTable("sampling", "mean elephants", "true load fraction", "jaccard vs unsampled", "mean holding")
		for _, r := range rows {
			tab.AddRow(fmt.Sprintf("1-in-%d", r.Rate),
				fmt.Sprintf("%.0f", r.MeanElephants),
				fmt.Sprintf("%.3f", r.MeanLoadFraction),
				fmt.Sprintf("%.3f", r.MeanJaccard),
				fmt.Sprintf("%.1f", r.MeanHoldingIntervals))
		}
		fmt.Print(tab.String())
		fmt.Println()
	}

	fmt.Printf("# Done in %v\n", time.Since(start).Round(time.Millisecond))
	return nil
}

func printVolatility(rows []experiments.VolatilityResult) {
	tab := report.NewTable("series", "mean elephants", "load fraction", "mean holding", "1-interval flows", "elephant flows")
	for _, r := range rows {
		tab.AddRow(r.Run.Label(),
			fmt.Sprintf("%.0f", r.MeanElephants),
			fmt.Sprintf("%.3f", r.MeanLoadFraction),
			fmt.Sprintf("%.1f slots (%v)", r.MeanHoldingIntervals, r.MeanHolding.Round(time.Minute)),
			r.SingleIntervalFlows, r.ElephantFlows)
	}
	fmt.Print(tab.String())
}

func printAblation(rows []experiments.AblationRow) {
	tab := report.NewTable("param", "value", "mean elephants", "load fraction", "mean holding", "1-interval", "theta CV", "reclass")
	for _, r := range rows {
		tab.AddRow(r.Param, fmt.Sprintf("%g", r.Value),
			fmt.Sprintf("%.0f", r.MeanElephants),
			fmt.Sprintf("%.3f", r.MeanLoadFraction),
			fmt.Sprintf("%.1f", r.MeanHoldingIntervals),
			r.SingleIntervalFlows,
			fmt.Sprintf("%.3f", r.ThresholdCV),
			r.Reclassifications)
	}
	fmt.Print(tab.String())
}

func writeCSV(dir, name, idx string, series []report.Series) error {
	if dir == "" {
		return nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	f, err := os.Create(filepath.Join(dir, name))
	if err != nil {
		return err
	}
	defer f.Close()
	if err := report.WriteCSVSeries(f, idx, series...); err != nil {
		return err
	}
	return f.Close()
}

func summarize(xs []float64) (mn, mx, mean float64) {
	if len(xs) == 0 {
		return 0, 0, 0
	}
	mn, mx = xs[0], xs[0]
	var sum float64
	for _, x := range xs {
		if x < mn {
			mn = x
		}
		if x > mx {
			mx = x
		}
		sum += x
	}
	return mn, mx, sum / float64(len(xs))
}

func orDefault(v, def int) int {
	if v == 0 {
		return def
	}
	return v
}
