package repro

// Steady-state allocation pins for the per-interval classify path.
// PR 7 moved its remaining per-step allocations into reusable storage:
// the pipeline's arena-backed elephant sets, the snapshot's cached
// sorted bandwidth column, and the columnar sketch counters all
// amortize across intervals. These pins keep that property from
// regressing silently — testing.AllocsPerRun truncates the average, so
// a sub-1 amortized rate (the arena growing a fresh chunk every several
// intervals) passes while a genuine per-interval allocation fails.

import (
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/obs"
	"repro/internal/scheme"
)

// TestPipelineStepSteadyStateAllocs pins the batch Snapshot+Step loop —
// the inner loop of every figure harness — at zero amortized
// allocations per interval once the pipeline and snapshot are warm.
func TestPipelineStepSteadyStateAllocs(t *testing.T) {
	cfg := experiments.SmallConfig()
	cfg.Intervals = 48
	cfg.Flows = 1200
	cfg.Routes = 3000
	ls, err := experiments.BuildLinks(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cc, err := scheme.MustParse("load+latent").Config()
	if err != nil {
		t.Fatal(err)
	}
	pipe, err := core.NewPipeline(cc)
	if err != nil {
		t.Fatal(err)
	}
	snap := core.NewFlowSnapshot(0)
	n := ls.West.Intervals
	step := func(i int) {
		snap = ls.West.Snapshot(i%n, snap)
		if _, err := pipe.Step(snap); err != nil {
			t.Fatal(err)
		}
	}
	// Warm: two full passes grow the flow table, the classifier columns,
	// the sorted-column buffer and the first arena chunks to capacity.
	for i := 0; i < 2*n; i++ {
		step(i)
	}
	i := 2 * n
	avg := testing.AllocsPerRun(3*n, func() { step(i); i++ })
	if avg != 0 {
		t.Errorf("warm Snapshot+Step averages %v allocs/interval, want 0", avg)
	}
}

// TestInstrumentedStepSteadyStateAllocs pins the fully instrumented
// step — the resident daemon's per-interval hot path: obs.LinkMetrics
// attached as the pipeline's StageObserver (stage histograms, churn
// counters, gauges) plus one flight-recorder trace per interval — at
// zero amortized allocations, same protocol as the bare pin above.
// Observability must ride along for free: every metric update is
// atomic and the recorder copies into a pre-allocated ring.
func TestInstrumentedStepSteadyStateAllocs(t *testing.T) {
	cfg := experiments.SmallConfig()
	cfg.Intervals = 48
	cfg.Flows = 1200
	cfg.Routes = 3000
	ls, err := experiments.BuildLinks(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cc, err := scheme.MustParse("load+latent").Config()
	if err != nil {
		t.Fatal(err)
	}
	om := obs.NewLinkMetrics(obs.NewRegistry(), "pin@0", 1, obs.DefaultStageBounds())
	cc.Observer = om
	pipe, err := core.NewPipeline(cc)
	if err != nil {
		t.Fatal(err)
	}
	fr := obs.NewFlightRecorder(obs.DefaultFlightRecorder)
	snap := core.NewFlowSnapshot(0)
	n := ls.West.Intervals
	step := func(i int) {
		snap = ls.West.Snapshot(i%n, snap)
		res, err := pipe.Step(snap)
		if err != nil {
			t.Fatal(err)
		}
		o := om.Last()
		fr.Record(obs.IntervalTrace{
			Interval:        res.Interval,
			SealedUnixNanos: time.Now().UnixNano(),
			DetectNanos:     o.DetectNanos,
			ClassifyNanos:   o.ClassifyNanos,
			FinalizeNanos:   o.FinalizeNanos,
			StepNanos:       o.StepNanos,
			RawThreshold:    o.RawThreshold,
			Threshold:       o.Threshold,
			TotalLoad:       o.TotalLoad,
			ElephantLoad:    o.ElephantLoad,
			ActiveFlows:     o.ActiveFlows,
			Elephants:       o.Elephants,
			Promoted:        o.Promoted,
			Demoted:         o.Demoted,
		})
	}
	for i := 0; i < 2*n; i++ {
		step(i)
	}
	i := 2 * n
	avg := testing.AllocsPerRun(3*n, func() { step(i); i++ })
	if avg != 0 {
		t.Errorf("instrumented Snapshot+Step averages %v allocs/interval, want 0", avg)
	}
}

// TestAestDetectSteadyStateAllocs pins the aest detector's warm-path
// allocation rate at zero: after the first call sizes the detector's
// scratch arena, repeated DetectThreshold calls on interval-sized
// bandwidth columns must run entirely on reused storage. This is the
// alloc half of the BenchmarkAestDetect6k win (207 allocs/op down to a
// handful cold, zero warm).
func TestAestDetectSteadyStateAllocs(t *testing.T) {
	cfg := experiments.SmallConfig()
	cfg.Intervals = 8
	cfg.Flows = 1200
	cfg.Routes = 3000
	ls, err := experiments.BuildLinks(cfg)
	if err != nil {
		t.Fatal(err)
	}
	det := core.NewAestDetector()
	n := ls.West.Intervals
	columns := make([][]float64, n)
	for i := 0; i < n; i++ {
		columns[i] = ls.West.Snapshot(i, nil).Bandwidths()
	}
	step := func(i int) {
		if _, err := det.DetectThreshold(columns[i%n]); err != nil {
			t.Fatal(err)
		}
	}
	// Warm: one pass over every column sizes the scratch arena to the
	// largest interval.
	for i := 0; i < n; i++ {
		step(i)
	}
	i := n
	avg := testing.AllocsPerRun(4*n, func() { step(i); i++ })
	if avg != 0 {
		t.Errorf("warm DetectThreshold averages %v allocs/call, want 0", avg)
	}
}
